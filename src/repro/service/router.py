"""The client side of the service tier: per-shard clients and the router.

The :class:`ShardRouter` is the piece that makes N independent shard
processes look like one system:

* **placement** — instance ids are consistent-hashed onto the shards
  (:class:`~repro.service.hashring.HashRing`); new case ids are
  allocated by the router so placement is decided *before* the start
  request leaves the client.
* **fan-out** — batch operations (``step_many``, ``start_many``) are
  partitioned per shard, sent in parallel, and merged **in input
  order**: the k-th id a caller passes gets the k-th result back, no
  matter which shard executed it.
* **schema broadcast** — ``evolve`` is a versioned two-phase commit:
  phase 1 *publishes* the change to every shard (each validates that
  its type sits at the expected version and stages the change); only
  when all shards accepted does phase 2 *activate* it — eagerly, or as
  a per-shard lazy/canary rollout.  Any publish refusal aborts the
  broadcast on every shard, so the fleet never splits across versions.
* **canary aggregation** — shard-local canaries are created with
  ``canary_decide="external"``; :meth:`canary_watch` sums attempts and
  conflicts across all shards and broadcasts the one promote/rollback
  verdict, so the decision is taken on fleet-wide evidence.
* **cross-shard worklist** — offers are aggregated under
  shard-qualified item ids (``"<shard>/<item>"``); a claim is routed to
  the single owning shard where it remains the same atomic
  compare-and-set it is in-process.
"""

from __future__ import annotations

import socket
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.service.errors import (
    RemoteError,
    ServiceError,
    ShardUnavailableError,
)
from repro.service.hashring import HashRing
from repro.service.protocol import recv_message, send_message
from repro.service.telemetry import ShardTelemetry

__all__ = ["ShardClient", "ShardRouter"]


class ShardClient:
    """One persistent connection to one shard, usable from many threads.

    Requests on a single connection are serialised under a lock (the
    protocol is strict request/response); the router achieves
    parallelism *across* shards, which is where the processes are.
    """

    def __init__(self, shard_id: str, host: str, port: int, timeout: float = 30.0) -> None:
        self.shard_id = shard_id
        self.host = host
        self.port = port
        self.timeout = timeout
        self.bytes_sent = 0
        self.bytes_received = 0
        self._lock = threading.Lock()
        self._sock: Optional[socket.socket] = None

    def _connect(self) -> socket.socket:
        if self._sock is None:
            try:
                sock = socket.create_connection((self.host, self.port), timeout=self.timeout)
            except OSError as exc:
                raise ShardUnavailableError(self.shard_id, str(exc)) from exc
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            self._sock = sock
        return self._sock

    def call(self, op: str, **params: Any) -> Any:
        """One request/response round trip; raises typed service errors."""
        request = {"op": op, **params}
        with self._lock:
            sock = self._connect()
            try:
                self.bytes_sent += send_message(sock, request)
                response, received = recv_message(sock)
                self.bytes_received += received
            except (ConnectionError, OSError) as exc:
                # a dead connection is not a dead shard per se, but the
                # caller must re-route or retry explicitly: drop the
                # socket so the next call reconnects
                self.close_socket()
                raise ShardUnavailableError(self.shard_id, str(exc)) from exc
        if not isinstance(response, dict) or "ok" not in response:
            raise ServiceError(f"malformed response from shard {self.shard_id!r}")
        if response["ok"]:
            return response.get("result")
        error = response.get("error") or {}
        raise RemoteError(
            self.shard_id, error.get("type", "Error"), error.get("message", "")
        )

    def close_socket(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None

    def close(self) -> None:
        with self._lock:
            self.close_socket()


class ShardRouter:
    """Make a fleet of shard processes look like one ``AdeptSystem``."""

    def __init__(
        self,
        endpoints: Mapping[str, Tuple[str, int]],
        replicas: int = 128,
        timeout: float = 30.0,
    ) -> None:
        if not endpoints:
            raise ServiceError("a router needs at least one shard endpoint")
        self.ring = HashRing(endpoints.keys(), replicas=replicas)
        self.clients: Dict[str, ShardClient] = {
            shard_id: ShardClient(shard_id, host, port, timeout=timeout)
            for shard_id, (host, port) in endpoints.items()
        }
        self._case_counters: Dict[str, int] = {}
        self._counter_lock = threading.Lock()
        self._pool = ThreadPoolExecutor(
            max_workers=max(4, len(self.clients)), thread_name_prefix="router"
        )

    # ------------------------------------------------------------------ #
    # plumbing
    # ------------------------------------------------------------------ #

    def client_for(self, instance_id: str) -> ShardClient:
        return self.clients[self.ring.shard_for(instance_id)]

    def call(self, shard_id: str, op: str, **params: Any) -> Any:
        return self.clients[shard_id].call(op, **params)

    def _fan_out(
        self, calls: Sequence[Tuple[str, Callable[[], Any]]]
    ) -> Dict[str, Any]:
        """Run thunks in parallel; raise the first failure after all land."""
        futures = {
            shard_id: self._pool.submit(thunk) for shard_id, thunk in calls
        }
        results: Dict[str, Any] = {}
        first_error: Optional[Exception] = None
        for shard_id, future in futures.items():
            try:
                results[shard_id] = future.result()
            except Exception as exc:  # noqa: BLE001 - re-raised below
                if first_error is None:
                    first_error = exc
        if first_error is not None:
            raise first_error
        return results

    def broadcast(self, op: str, **params: Any) -> Dict[str, Any]:
        """Send one op to every shard in parallel; results by shard id."""
        return self._fan_out(
            [
                (shard_id, lambda c=client: c.call(op, **params))
                for shard_id, client in self.clients.items()
            ]
        )

    def reconnect(self, shard_id: str, host: str, port: int) -> None:
        """Point a shard's client at a restarted process."""
        client = self.clients[shard_id]
        client.close()
        client.host = host
        client.port = port

    def close(self) -> None:
        for client in self.clients.values():
            client.close()
        self._pool.shutdown(wait=False)

    # ------------------------------------------------------------------ #
    # schema and case lifecycle
    # ------------------------------------------------------------------ #

    def deploy(self, schema_dict: Mapping[str, Any], verify: bool = True) -> Dict[str, Any]:
        """Deploy a process type on every shard (idempotent broadcast)."""
        results = self.broadcast("deploy", schema=dict(schema_dict), verify=verify)
        return next(iter(results.values()))

    def _next_case_id(self, type_id: str) -> str:
        with self._counter_lock:
            self._case_counters[type_id] = self._case_counters.get(type_id, 0) + 1
            return f"{type_id}-r{self._case_counters[type_id]:06d}"

    def start(self, type_id: str, case_id: Optional[str] = None, **data: Any) -> str:
        """Start one case on the shard that owns its (possibly new) id."""
        attempts = 0
        while True:
            allocated = case_id if case_id is not None else self._next_case_id(type_id)
            client = self.client_for(allocated)
            try:
                result = client.call(
                    "start", type_id=type_id, case_id=allocated, data=data or None
                )
                return result["instance_id"]
            except RemoteError as exc:
                # an id collision (restarted router vs. durable shards) is
                # retryable only when the router allocated the id itself
                taken = "already in use" in exc.remote_message
                if case_id is None and taken and attempts < 1000:
                    attempts += 1
                    continue
                raise

    def start_many(self, type_id: str, count: int, **data: Any) -> List[str]:
        """Start ``count`` cases, spread over the ring by their ids."""
        ids = [self._next_case_id(type_id) for _ in range(count)]
        groups = self.ring.partition(ids)
        def _start_group(client: ShardClient, group: List[str]) -> List[str]:
            return [
                client.call("start", type_id=type_id, case_id=i, data=data or None)[
                    "instance_id"
                ]
                for i in group
            ]
        self._fan_out(
            [
                (shard_id, lambda c=self.clients[shard_id], g=group: _start_group(c, g))
                for shard_id, group in groups.items()
            ]
        )
        return ids

    def step_many(
        self, instance_ids: Sequence[str], steps: int = 1, worker: str = ""
    ) -> List[Dict[str, Any]]:
        """Advance many cases, one batch per owning shard, merged in input order."""
        ids = list(instance_ids)
        groups = self.ring.partition(ids)
        per_shard = self._fan_out(
            [
                (
                    shard_id,
                    lambda c=self.clients[shard_id], g=group: c.call(
                        "step_many", instance_ids=g, steps=steps, worker=worker
                    ),
                )
                for shard_id, group in groups.items()
            ]
        )
        # partition() preserved input order per shard, and each shard
        # returns results in its input order — zip them back by position
        by_id: Dict[str, Dict[str, Any]] = {}
        for shard_id, group in groups.items():
            for case_id, result in zip(group, per_shard[shard_id]):
                by_id[case_id] = result
        return [by_id[case_id] for case_id in ids]

    def run(self, instance_id: str, worker: str = "", max_steps: int = 10000) -> Dict[str, Any]:
        return self.client_for(instance_id).call(
            "run", instance_id=instance_id, worker=worker, max_steps=max_steps
        )

    def complete(
        self,
        instance_id: str,
        activity_id: str,
        outputs: Optional[Mapping[str, Any]] = None,
        user: Optional[str] = None,
    ) -> Dict[str, Any]:
        return self.client_for(instance_id).call(
            "complete",
            instance_id=instance_id,
            activity_id=activity_id,
            outputs=dict(outputs) if outputs else None,
            user=user,
        )

    def instance_info(self, instance_id: str) -> Dict[str, Any]:
        return self.client_for(instance_id).call("instance_info", instance_id=instance_id)

    def instances_of(self, type_id: str, version: Optional[int] = None) -> List[str]:
        results = self.broadcast("instances_of", type_id=type_id, version=version)
        merged: List[str] = []
        for shard_id in sorted(results):
            merged.extend(results[shard_id])
        return merged

    # ------------------------------------------------------------------ #
    # the versioned two-phase schema broadcast
    # ------------------------------------------------------------------ #

    def evolve(
        self,
        type_id: str,
        change_dict: Mapping[str, Any],
        expect_version: int,
        rollout: str = "eager",
        **options: Any,
    ) -> Dict[str, Any]:
        """Evolve ``type_id`` across the whole fleet, atomically versioned.

        Phase 1 publishes the change to every shard; each shard verifies
        its type is at ``expect_version`` and stages the change under a
        token.  If *any* shard refuses (version skew, in-flight rollout,
        unreachable), the broadcast aborts on every shard that accepted
        and the error is re-raised — no shard activates.  Phase 2
        activates the staged change everywhere and aggregates the
        per-shard outcome counters.
        """
        tokens: Dict[str, str] = {}
        try:
            published = self.broadcast(
                "evolve_publish",
                type_id=type_id,
                change=dict(change_dict),
                expect_version=expect_version,
            )
        except Exception:
            # some shards may have staged before the failing one refused
            self._abort_published(type_id, expect_version)
            raise
        for shard_id, result in published.items():
            tokens[shard_id] = result["token"]
        try:
            activated = self._fan_out(
                [
                    (
                        shard_id,
                        lambda c=self.clients[shard_id], t=token: c.call(
                            "evolve_activate", token=t, rollout=rollout, **options
                        ),
                    )
                    for shard_id, token in tokens.items()
                ]
            )
        except ShardUnavailableError:
            # activation is not abortable — a shard that activated has
            # committed.  An unreachable shard here re-publishes on
            # restart recovery; surface the partial failure loudly.
            raise
        summary: Dict[str, Any] = {
            "type_id": type_id,
            "rollout": rollout,
            "shards": activated,
        }
        if rollout == "eager":
            summary["total"] = sum(r["total"] for r in activated.values())
            summary["migrated"] = sum(r["migrated"] for r in activated.values())
            outcomes: Dict[str, int] = {}
            for result in activated.values():
                for outcome, count in result.get("outcomes", {}).items():
                    outcomes[outcome] = outcomes.get(outcome, 0) + count
            summary["outcomes"] = outcomes
        return summary

    def _abort_published(self, type_id: str, expect_version: int) -> None:
        """Best-effort abort of stages left behind by a failed publish."""
        for client in self.clients.values():
            try:
                # shards key stages by token; a failed broadcast loses the
                # tokens of the shards that *did* accept, so abort by
                # asking each shard to drop any stage for this type
                client.call("evolve_abort_type", type_id=type_id)
            except ServiceError:
                continue

    def rollout_status(self, type_id: str) -> Dict[str, Any]:
        """Aggregated rollout progress across all shards."""
        statuses = self.broadcast("rollout_status", type_id=type_id)
        present = {s: r for s, r in statuses.items() if r is not None}
        aggregate: Dict[str, Any] = {
            "type_id": type_id,
            "shards": statuses,
            "adopted": sum(r["adopted"] for r in present.values()),
            "conflicted": sum(r["conflicted"] for r in present.values()),
            "attempts": sum(r["attempts"] for r in present.values()),
            "states": sorted({r["state"] for r in present.values()}),
        }
        attempts = aggregate["attempts"]
        aggregate["observed_conflict_rate"] = (
            aggregate["conflicted"] / attempts if attempts else 0.0
        )
        return aggregate

    def canary_watch(
        self,
        type_id: str,
        min_observations: int = 20,
        conflict_threshold: float = 0.5,
        poll_interval: float = 0.02,
        timeout: float = 30.0,
    ) -> str:
        """Observe a fleet-wide canary and broadcast the one verdict.

        The shard-local rollouts were created with
        ``canary_decide="external"`` — none of them will self-promote on
        its partial sample.  This method polls the aggregated counters
        until ``min_observations`` attempts accumulated *fleet-wide*,
        decides with the same rule a single system applies locally, and
        broadcasts ``rollout_decide`` so every shard transitions together.
        Returns ``"promote"`` or ``"rollback"``.
        """
        import time

        deadline = time.monotonic() + timeout
        while True:
            aggregate = self.rollout_status(type_id)
            if aggregate["attempts"] >= min_observations:
                break
            if time.monotonic() > deadline:
                raise ServiceError(
                    f"canary of {type_id!r} saw only {aggregate['attempts']} "
                    f"attempts before the watch timeout"
                )
            time.sleep(poll_interval)
        decision = (
            "rollback"
            if aggregate["observed_conflict_rate"] > conflict_threshold
            else "promote"
        )
        self.broadcast("rollout_decide", type_id=type_id, decision=decision)
        return decision

    def sweep_rollout(self, type_id: str, max_cases: int = 256) -> int:
        results = self.broadcast("sweep_rollout", type_id=type_id, max_cases=max_cases)
        return sum(r["swept"] for r in results.values())

    # ------------------------------------------------------------------ #
    # cross-shard worklist
    # ------------------------------------------------------------------ #

    def worklist(self, user: str) -> List[Dict[str, Any]]:
        """All shards' offers for ``user``, item ids shard-qualified."""
        results = self.broadcast("worklist", user=user)
        merged: List[Dict[str, Any]] = []
        for shard_id in sorted(results):
            for item in results[shard_id]:
                qualified = dict(item)
                qualified["item_id"] = f"{shard_id}/{item['item_id']}"
                qualified["shard_id"] = shard_id
                merged.append(qualified)
        return merged

    def _split_item_id(self, qualified: str) -> Tuple[str, str]:
        shard_id, _, item_id = qualified.partition("/")
        if not item_id or shard_id not in self.clients:
            raise ServiceError(f"item id {qualified!r} is not shard-qualified")
        return shard_id, item_id

    def claim(self, qualified_item_id: str, user: str) -> Dict[str, Any]:
        """Claim one offer — an atomic CAS on the single owning shard."""
        shard_id, item_id = self._split_item_id(qualified_item_id)
        item = self.clients[shard_id].call("claim", item_id=item_id, user=user)
        item["item_id"] = qualified_item_id
        item["shard_id"] = shard_id
        return item

    def complete_item(
        self, qualified_item_id: str, outputs: Optional[Mapping[str, Any]] = None
    ) -> Dict[str, Any]:
        shard_id, item_id = self._split_item_id(qualified_item_id)
        item = self.clients[shard_id].call(
            "complete_item", item_id=item_id, outputs=dict(outputs) if outputs else None
        )
        item["item_id"] = qualified_item_id
        item["shard_id"] = shard_id
        return item

    # ------------------------------------------------------------------ #
    # membership changes (rebalancing)
    # ------------------------------------------------------------------ #

    def add_shard(self, shard_id: str, host: str, port: int) -> List[str]:
        """Add a shard and hand over the cases the ring remaps to it.

        The joining shard first receives every deployed type with all of
        its versions (schema sync — change propagation), *then* the
        remapped cases; an imported case always finds its type.
        """
        client = ShardClient(shard_id, host, port)
        donor = next(iter(self.clients.values()))
        for dumped_type in donor.call("dump_types"):
            client.call("adopt_type", type=dumped_type)
        self.clients[shard_id] = client
        before = {case_id: self.ring.shard_for(case_id) for case_id in self._all_case_ids()}
        self.ring.add_shard(shard_id)
        return self._rebalance(before)

    def remove_shard(self, shard_id: str) -> List[str]:
        """Drain a shard: hand its cases to the ring's new owners, drop it."""
        before = {case_id: self.ring.shard_for(case_id) for case_id in self._all_case_ids()}
        self.ring.remove_shard(shard_id)
        moved = self._rebalance(before)
        client = self.clients.pop(shard_id)
        client.close()
        return moved

    def _all_case_ids(self) -> List[str]:
        ids: List[str] = []
        for shard_ids in self.broadcast("case_ids").values():
            ids.extend(shard_ids)
        return ids

    def _rebalance(self, before: Mapping[str, str]) -> List[str]:
        """Move every case whose owner changed; returns the moved ids."""
        moved: List[str] = []
        for case_id, old_owner in before.items():
            new_owner = self.ring.shard_for(case_id)
            if new_owner == old_owner:
                continue
            record = self.clients[old_owner].call("export_case", instance_id=case_id)
            self.clients[new_owner].call("import_case", record=record["record"])
            moved.append(case_id)
        return moved

    # ------------------------------------------------------------------ #
    # monitoring
    # ------------------------------------------------------------------ #

    def status(self) -> Dict[str, Any]:
        """Per-shard status plus fleet-wide aggregated telemetry."""
        shards = self.broadcast("status")
        telemetry = ShardTelemetry.merge(
            [result["telemetry"] for result in shards.values()]
        )
        client_bytes = sum(
            client.bytes_sent + client.bytes_received
            for client in self.clients.values()
        )
        return {
            "shards": shards,
            "telemetry": telemetry,
            "router_bytes": client_bytes,
        }

    def telemetry(self) -> Dict[str, int]:
        return ShardTelemetry.merge(list(self.broadcast("telemetry").values()))
