"""Length-prefixed JSON frames over a stream socket.

The service tier speaks the simplest protocol that is robust against
partial reads: each message is an 8-byte big-endian length followed by
that many bytes of UTF-8 JSON.  Requests are
``{"op": <name>, ...params}``; responses are either
``{"ok": true, "result": ...}`` or
``{"ok": false, "error": {"type": <exc class>, "message": <str>}}``.

Both send and receive return the number of bytes moved so callers can
feed the measured ``data_transfer`` telemetry counter without guessing.
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Any, Tuple

from repro.service.errors import ShardProtocolError

__all__ = ["send_message", "recv_message", "MAX_FRAME_BYTES"]

_HEADER = struct.Struct(">Q")

# A WAL summary for a very large population is the biggest frame we
# expect; 256 MiB is far above it and still catches corrupt headers.
MAX_FRAME_BYTES = 256 * 1024 * 1024


def send_message(sock: socket.socket, payload: Any) -> int:
    """Encode ``payload`` as one frame; returns bytes written."""
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    frame = _HEADER.pack(len(body)) + body
    sock.sendall(frame)
    return len(frame)


def _recv_exact(sock: socket.socket, count: int) -> bytes:
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            raise ConnectionError("peer closed the connection mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_message(sock: socket.socket) -> Tuple[Any, int]:
    """Read one frame; returns ``(payload, bytes_read)``.

    Raises ``ConnectionError`` on a clean close before the header and
    :class:`ShardProtocolError` on a malformed frame.
    """
    header = _recv_exact(sock, _HEADER.size)
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ShardProtocolError(f"frame of {length} bytes exceeds protocol limit")
    body = _recv_exact(sock, length)
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ShardProtocolError(f"undecodable frame: {exc}") from exc
    return payload, _HEADER.size + length
