"""Spawning and babysitting shard processes.

The :class:`ShardSupervisor` is the deployment glue between the CLI and
the shard runtime: it derives each shard's store directory from one base
path (:func:`repro.system.persistence.shard_store_path`), spawns
``python -m repro.service.shard_server`` per shard, discovers the
OS-assigned ports through the ``endpoint.json`` handshake and builds the
endpoint map a :class:`~repro.service.router.ShardRouter` consumes.

It also powers the failure drills: :meth:`kill` SIGKILLs one shard
(crash simulation — no flush, no checkpoint), :meth:`restart` brings it
back on the *same store* so ``AdeptSystem.open`` replays its WAL, and
:meth:`stop` SIGTERMs the fleet for the graceful flush-and-checkpoint
path.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple

import repro
from repro.service.errors import ServiceError
from repro.service.shard_server import ENDPOINT_FILE
from repro.system.persistence import shard_store_path

__all__ = ["ShardSupervisor"]


def shard_ids(count: int) -> List[str]:
    """The canonical shard naming: ``shard-00`` … ``shard-NN``."""
    return [f"shard-{index:02d}" for index in range(count)]


class ShardSupervisor:
    """Own the lifecycle of N shard processes over one base store."""

    def __init__(
        self,
        base_store: str,
        shards: int = 2,
        workers: int = 0,
        worker: str = "",
        cache_instances: Optional[int] = None,
        startup_timeout: float = 30.0,
    ) -> None:
        if shards < 1:
            raise ServiceError("a supervisor needs at least one shard")
        self.base_store = base_store
        self.shard_ids = shard_ids(shards)
        self.workers = workers
        self.worker_spec = worker
        self.cache_instances = cache_instances
        self.startup_timeout = startup_timeout
        self.processes: Dict[str, subprocess.Popen] = {}
        self.endpoints: Dict[str, Tuple[str, int]] = {}

    # ------------------------------------------------------------------ #
    # spawning
    # ------------------------------------------------------------------ #

    def store_of(self, shard_id: str) -> str:
        return shard_store_path(self.base_store, shard_id)

    def _spawn_command(self, shard_id: str) -> List[str]:
        command = [
            sys.executable,
            "-m",
            "repro.service.shard_server",
            "--shard-id",
            shard_id,
            "--store",
            self.store_of(shard_id),
            "--port",
            "0",
        ]
        if self.workers:
            command += ["--workers", str(self.workers)]
        if self.worker_spec:
            command += ["--worker", self.worker_spec]
        if self.cache_instances is not None:
            command += ["--cache-instances", str(self.cache_instances)]
        return command

    def _environment(self) -> Dict[str, str]:
        env = dict(os.environ)
        package_root = str(Path(repro.__file__).resolve().parents[1])
        existing = env.get("PYTHONPATH", "")
        env["PYTHONPATH"] = (
            package_root if not existing else package_root + os.pathsep + existing
        )
        return env

    def spawn(self, shard_id: str) -> Tuple[str, int]:
        """Start one shard process and wait for its endpoint handshake."""
        if shard_id in self.processes and self.processes[shard_id].poll() is None:
            raise ServiceError(f"shard {shard_id!r} is already running")
        store = Path(self.store_of(shard_id))
        store.mkdir(parents=True, exist_ok=True)
        endpoint_file = store / ENDPOINT_FILE
        if endpoint_file.exists():
            endpoint_file.unlink()  # a stale endpoint must not win the race
        log_handle = open(store / "server.log", "ab")
        try:
            process = subprocess.Popen(
                self._spawn_command(shard_id),
                stdout=log_handle,
                stderr=subprocess.STDOUT,
                env=self._environment(),
            )
        finally:
            log_handle.close()  # the child inherited the descriptor
        self.processes[shard_id] = process
        endpoint = self._await_endpoint(shard_id, process, endpoint_file)
        self.endpoints[shard_id] = endpoint
        return endpoint

    def _await_endpoint(
        self, shard_id: str, process: subprocess.Popen, endpoint_file: Path
    ) -> Tuple[str, int]:
        deadline = time.monotonic() + self.startup_timeout
        while time.monotonic() < deadline:
            if process.poll() is not None:
                log = (endpoint_file.parent / "server.log").read_text(errors="replace")
                raise ServiceError(
                    f"shard {shard_id!r} exited with {process.returncode} during "
                    f"startup; log tail:\n{log[-2000:]}"
                )
            if endpoint_file.exists():
                try:
                    payload = json.loads(endpoint_file.read_text())
                except json.JSONDecodeError:
                    continue  # mid-rename; the write is atomic, retry
                return payload["host"], payload["port"]
            time.sleep(0.02)
        raise ServiceError(f"shard {shard_id!r} did not publish an endpoint in time")

    def start_all(self) -> Dict[str, Tuple[str, int]]:
        for shard_id in self.shard_ids:
            self.spawn(shard_id)
        return dict(self.endpoints)

    # ------------------------------------------------------------------ #
    # failure drills and shutdown
    # ------------------------------------------------------------------ #

    def kill(self, shard_id: str) -> None:
        """SIGKILL one shard — the crash path, nothing flushes."""
        process = self.processes.get(shard_id)
        if process is None or process.poll() is not None:
            raise ServiceError(f"shard {shard_id!r} is not running")
        process.kill()
        process.wait(timeout=10.0)

    def restart(self, shard_id: str) -> Tuple[str, int]:
        """Bring a dead shard back on its own store (WAL replay recovery)."""
        process = self.processes.get(shard_id)
        if process is not None and process.poll() is None:
            raise ServiceError(f"shard {shard_id!r} is still running")
        return self.spawn(shard_id)

    def alive(self, shard_id: str) -> bool:
        process = self.processes.get(shard_id)
        return process is not None and process.poll() is None

    def stop(self, timeout: float = 30.0) -> None:
        """SIGTERM every shard and wait — the graceful flush path."""
        for process in self.processes.values():
            if process.poll() is None:
                process.send_signal(signal.SIGTERM)
        deadline = time.monotonic() + timeout
        for shard_id, process in self.processes.items():
            remaining = max(0.1, deadline - time.monotonic())
            try:
                process.wait(timeout=remaining)
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait(timeout=10.0)
        self.processes.clear()

    def __enter__(self) -> "ShardSupervisor":
        self.start_all()
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self.stop()
