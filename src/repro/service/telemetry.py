"""Measured communication telemetry for the service tier.

:mod:`repro.distributed.costs` *models* the ADEPT2 cost factors —
hand-overs between servers, change propagation on evolution, migration
work and raw data transfer — by counting simulated events.  The shard
processes emit the same counters for real traffic: every frame on the
wire adds measured bytes to ``data_transfer``, every case exported to
or imported from another shard is a ``handover``, every schema
publish/activate that reaches a shard is ``change_propagation`` and
every case actually migrated there counts under ``migration``.

The counter names intentionally match
:meth:`repro.distributed.costs.CommunicationCosts.as_dict` so the A5
simulation benchmark and the sharded-service benchmark are directly
comparable.
"""

from __future__ import annotations

import threading
from typing import Dict

__all__ = ["ShardTelemetry"]


class ShardTelemetry:
    """Thread-safe counters a shard accumulates while serving."""

    _COUNTERS = (
        "handover",
        "change_propagation",
        "migration",
        "data_transfer",
        "requests",
        "steps",
    )

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counts: Dict[str, int] = {name: 0 for name in self._COUNTERS}

    def add(self, counter: str, amount: int = 1) -> None:
        if counter not in self._counts:
            raise KeyError(f"unknown telemetry counter {counter!r}")
        with self._lock:
            self._counts[counter] += amount

    def as_dict(self) -> Dict[str, int]:
        """A snapshot, with ``total`` summing the ADEPT2 cost factors."""
        with self._lock:
            snapshot = dict(self._counts)
        snapshot["total"] = (
            snapshot["handover"]
            + snapshot["change_propagation"]
            + snapshot["migration"]
        )
        return snapshot

    @staticmethod
    def merge(snapshots: "list[Dict[str, int]]") -> Dict[str, int]:
        """Sum per-shard snapshots into a fleet-wide view."""
        merged: Dict[str, int] = {}
        for snapshot in snapshots:
            for key, value in snapshot.items():
                merged[key] = merged.get(key, 0) + value
        return merged
