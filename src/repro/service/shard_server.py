"""One shard: a process owning one durable ``AdeptSystem`` partition.

A :class:`ShardServer` wraps exactly one
:class:`~repro.system.AdeptSystem` — its own store directory, its own
worker pool, its own rollout sweepers — behind the length-prefixed JSON
protocol of :mod:`repro.service.protocol`.  The server never routes:
every instance id it is asked about is assumed to belong to its
partition (the :class:`~repro.service.router.ShardRouter` owns the
consistent-hash placement).

Two run modes share all the code:

* **in-thread** (``start_in_thread()``) — for unit tests and doctests;
  the server and the caller share one interpreter, so a "cluster" of
  three in-thread shards still demonstrates routing and broadcast
  semantics without subprocess overhead.
* **as a process** (``python -m repro.service.shard_server``) — the
  real deployment unit, spawned by the
  :class:`~repro.service.supervisor.ShardSupervisor` or an operator.
  The process installs SIGTERM/SIGINT handlers that stop the request
  loop, drain the worker pool and run ``AdeptSystem.close()`` — the
  group-commit WAL batches flush and a snapshot is written, so a
  *gracefully* terminated shard restarts without any WAL replay.  A
  shard killed with SIGKILL recovers through the normal
  ``AdeptSystem.open`` replay path instead; both paths converge on the
  same committed state.

After binding (``port=0`` asks the OS for a free port) the server
publishes ``endpoint.json`` into its store directory — the discovery
handshake used by the supervisor and the CLI.
"""

from __future__ import annotations

import argparse
import json
import os
import secrets
import signal
import socket
import sys
import threading
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.evolution import TypeChange
from repro.errors import ReproError
from repro.schema.graph import ProcessSchema
from repro.service.errors import ServiceError
from repro.service.protocol import recv_message, send_message
from repro.service.telemetry import ShardTelemetry
from repro.system.concurrency import RolloutSweeper, simulated_latency_worker
from repro.system.facade import AdeptSystem
from repro.system.persistence import (
    KIND_EVOLUTION,
    KIND_ROLLOUT_MIGRATED,
    KIND_STEP,
)
from repro.system.rollout import ROLLOUT_CANARY, ROLLOUT_EAGER, ROLLOUT_LAZY

__all__ = ["ShardServer", "resolve_worker", "run_shard_server", "main"]

ENDPOINT_FILE = "endpoint.json"


def resolve_worker(spec: str) -> Optional[Callable[..., Dict[str, Any]]]:
    """Materialise a worker from its wire/CLI spec.

    Workers are functions and cannot travel over the wire or a command
    line, so the service tier names them: ``""`` is the engine default,
    ``"simulated_latency:<seconds>"`` is the blocking-activity model
    used by the throughput benchmarks.
    """
    if not spec:
        return None
    if spec.startswith("simulated_latency:"):
        return simulated_latency_worker(float(spec.split(":", 1)[1]))
    raise ServiceError(f"unknown worker spec {spec!r}")


def _atomic_write_json(path: Path, payload: Dict[str, Any]) -> None:
    tmp = path.with_suffix(".tmp")
    tmp.write_text(json.dumps(payload, indent=2), encoding="utf-8")
    os.replace(tmp, path)


class ShardServer:
    """Serve one ``AdeptSystem`` partition over the shard protocol."""

    def __init__(
        self,
        shard_id: str,
        store: Optional[str] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 0,
        worker: str = "",
        cache_instances: Optional[int] = None,
    ) -> None:
        self.shard_id = shard_id
        self.store_path = store
        self.host = host
        self.port = port
        self.workers = workers
        self.worker_spec = worker
        self.cache_instances = cache_instances
        self.telemetry = ShardTelemetry()
        self.system: Optional[AdeptSystem] = None
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._threads: List[threading.Thread] = []
        self._stop = threading.Event()
        self._started = False
        self._stopped = False
        self._lifecycle = threading.Lock()
        # staged (published, not yet activated) schema changes, by token
        self._staged: Dict[str, Tuple[str, TypeChange, int]] = {}
        self._staged_lock = threading.Lock()
        self._sweepers: Dict[str, RolloutSweeper] = {}
        self._handlers: Dict[str, Callable[[Dict[str, Any]], Any]] = {
            "ping": self._op_ping,
            "status": self._op_status,
            "telemetry": self._op_telemetry,
            "deploy": self._op_deploy,
            "dump_types": self._op_dump_types,
            "adopt_type": self._op_adopt_type,
            "start": self._op_start,
            "run": self._op_run,
            "step_many": self._op_step_many,
            "start_activity": self._op_start_activity,
            "complete": self._op_complete,
            "activated": self._op_activated,
            "abort": self._op_abort,
            "delete_instance": self._op_delete_instance,
            "instance_info": self._op_instance_info,
            "instances_of": self._op_instances_of,
            "evolve_publish": self._op_evolve_publish,
            "evolve_activate": self._op_evolve_activate,
            "evolve_abort": self._op_evolve_abort,
            "evolve_abort_type": self._op_evolve_abort_type,
            "case_ids": self._op_case_ids,
            "rollout_status": self._op_rollout_status,
            "rollout_decide": self._op_rollout_decide,
            "sweep_rollout": self._op_sweep_rollout,
            "worklist": self._op_worklist,
            "claim": self._op_claim,
            "complete_item": self._op_complete_item,
            "export_case": self._op_export_case,
            "import_case": self._op_import_case,
            "wal_summary": self._op_wal_summary,
            "checkpoint": self._op_checkpoint,
            "serve": self._op_serve,
            "drain": self._op_drain,
            "shutdown": self._op_shutdown,
        }

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    @property
    def endpoint(self) -> Tuple[str, int]:
        if self._listener is None:
            raise ServiceError(f"shard {self.shard_id!r} is not listening")
        return self.host, self.port

    def start_in_thread(self) -> Tuple[str, int]:
        """Open the system, bind, and serve from a daemon thread."""
        with self._lifecycle:
            if self._started:
                raise ServiceError(f"shard {self.shard_id!r} already started")
            self._started = True
        if self.store_path is not None:
            self.system = AdeptSystem.open(
                self.store_path, cache_instances=self.cache_instances
            )
        else:
            self.system = AdeptSystem(cache_instances=self.cache_instances)
        if self.workers:
            self.system.serve(
                workers=self.workers, worker=resolve_worker(self.worker_spec)
            )
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self.port))
        listener.listen(64)
        listener.settimeout(0.2)
        self.host, self.port = listener.getsockname()
        self._listener = listener
        if self.store_path is not None:
            _atomic_write_json(
                Path(self.store_path) / ENDPOINT_FILE,
                {
                    "shard_id": self.shard_id,
                    "host": self.host,
                    "port": self.port,
                    "pid": os.getpid(),
                },
            )
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name=f"shard-{self.shard_id}-accept", daemon=True
        )
        self._accept_thread.start()
        return self.host, self.port

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the server is asked to stop (signal or RPC)."""
        return self._stop.wait(timeout)

    def initiate_shutdown(self) -> None:
        """Ask the request loop to stop; safe from signal handlers and RPCs."""
        self._stop.set()

    def stop(self, checkpoint: bool = True) -> None:
        """Stop serving, drain workers, flush and close the system.

        Idempotent, like ``AdeptSystem.close`` — the SIGTERM handler and
        the ``finally`` of the main loop may both end up here.
        """
        with self._lifecycle:
            if self._stopped:
                return
            self._stopped = True
        self._stop.set()
        if self._listener is not None:
            self._listener.close()
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)
        for thread in list(self._threads):
            thread.join(timeout=5.0)
        for sweeper in self._sweepers.values():
            sweeper.stop()
        self._sweepers.clear()
        if self.system is not None:
            try:
                if self.system._pool is not None and self.system._pool.active:
                    self.system.drain(timeout=30.0)
            except ReproError:
                pass
            self.system.close(checkpoint=checkpoint)

    # ------------------------------------------------------------------ #
    # request loop
    # ------------------------------------------------------------------ #

    def _accept_loop(self) -> None:
        assert self._listener is not None
        while not self._stop.is_set():
            try:
                conn, _addr = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                break  # listener closed
            thread = threading.Thread(
                target=self._serve_connection,
                args=(conn,),
                name=f"shard-{self.shard_id}-conn",
                daemon=True,
            )
            self._threads.append(thread)
            thread.start()
            # reap finished connection threads so long-lived servers
            # don't accumulate thread objects
            self._threads = [t for t in self._threads if t.is_alive()]

    def _serve_connection(self, conn: socket.socket) -> None:
        with conn:
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            while not self._stop.is_set():
                try:
                    request, received = recv_message(conn)
                except (ConnectionError, OSError):
                    return
                except ServiceError:
                    return  # malformed frame: drop the connection
                self.telemetry.add("data_transfer", received)
                self.telemetry.add("requests")
                response = self._dispatch(request)
                try:
                    sent = send_message(conn, response)
                except (ConnectionError, OSError):
                    return
                self.telemetry.add("data_transfer", sent)

    def _dispatch(self, request: Any) -> Dict[str, Any]:
        if not isinstance(request, dict) or "op" not in request:
            return _error_payload(ServiceError("request must be an object with an 'op'"))
        handler = self._handlers.get(request["op"])
        if handler is None:
            return _error_payload(ServiceError(f"unknown op {request['op']!r}"))
        try:
            return {"ok": True, "result": handler(request)}
        except Exception as exc:  # noqa: BLE001 - every failure crosses the wire
            return _error_payload(exc)

    # ------------------------------------------------------------------ #
    # basic ops
    # ------------------------------------------------------------------ #

    def _system(self) -> AdeptSystem:
        if self.system is None:
            raise ServiceError(f"shard {self.shard_id!r} has no system")
        return self.system

    def _op_ping(self, request: Dict[str, Any]) -> Dict[str, Any]:
        return {"shard_id": self.shard_id, "pid": os.getpid()}

    def _op_status(self, request: Dict[str, Any]) -> Dict[str, Any]:
        system = self._system()
        with system._registry:
            live = len(system._instances)
        return {
            "shard_id": self.shard_id,
            "pid": os.getpid(),
            "host": self.host,
            "port": self.port,
            "store": self.store_path,
            "types": sorted(system.repository.type_names()),
            "live_instances": live,
            "stored_instances": len(system.store.instance_ids()),
            "workers": self.workers,
            "telemetry": self.telemetry.as_dict(),
        }

    def _op_telemetry(self, request: Dict[str, Any]) -> Dict[str, Any]:
        return self.telemetry.as_dict()

    def _op_deploy(self, request: Dict[str, Any]) -> Dict[str, Any]:
        system = self._system()
        schema = ProcessSchema.from_dict(request["schema"])
        if system.repository.has_type(schema.name):
            # the broadcast deploy is idempotent: a shard that already
            # has the type (restart, retry) acknowledges instead of failing
            existing = system.repository.process_type(schema.name)
            return {
                "type_id": schema.name,
                "version": existing.latest_version,
                "already_deployed": True,
            }
        handle = system.deploy(schema, verify=request.get("verify", True))
        self.telemetry.add("change_propagation")
        return {
            "type_id": handle.type_id,
            "version": schema.version,
            "already_deployed": False,
        }

    def _op_dump_types(self, request: Dict[str, Any]) -> List[Dict[str, Any]]:
        """Every deployed type with all its schema versions (join sync)."""
        system = self._system()
        dump: List[Dict[str, Any]] = []
        for type_name in sorted(system.repository.type_names()):
            process_type = system.repository.process_type(type_name)
            dump.append(
                {
                    "name": type_name,
                    "schemas": [
                        process_type.schema_for(version).to_dict()
                        for version in process_type.versions
                    ],
                }
            )
        return dump

    def _op_adopt_type(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Adopt a multi-version type dumped by another shard (join sync).

        Idempotent like ``deploy``: a shard that already has the type at
        the dumped latest version acknowledges instead of failing.
        """
        from repro.core.evolution import ProcessType

        system = self._system()
        name = request["type"]["name"]
        schemas = [
            ProcessSchema.from_dict(payload) for payload in request["type"]["schemas"]
        ]
        latest = max(schema.version for schema in schemas)
        if system.repository.has_type(name):
            existing = system.repository.process_type(name)
            if existing.latest_version != latest:
                raise ServiceError(
                    f"shard {self.shard_id!r} has {name!r} at version "
                    f"{existing.latest_version}, dump carries {latest}"
                )
            return {"type_id": name, "version": latest, "already_deployed": True}
        process_type = ProcessType(name)
        for schema in sorted(schemas, key=lambda s: s.version):
            process_type.add_version(schema)
        system.adopt(process_type)
        self.telemetry.add("change_propagation")
        return {"type_id": name, "version": latest, "already_deployed": False}

    def _op_start(self, request: Dict[str, Any]) -> Dict[str, Any]:
        system = self._system()
        handle = system.start(
            request["type_id"],
            case_id=request.get("case_id"),
            version=request.get("version"),
            **(request.get("data") or {}),
        )
        return {"instance_id": handle.instance_id}

    def _op_run(self, request: Dict[str, Any]) -> Dict[str, Any]:
        result = self._system().run(
            request["instance_id"],
            worker=resolve_worker(request.get("worker", self.worker_spec)),
            max_steps=request.get("max_steps", 10000),
        )
        self.telemetry.add("steps", result.steps)
        return result.to_dict()

    def _op_step_many(self, request: Dict[str, Any]) -> List[Dict[str, Any]]:
        results = self._system().step_many(
            request["instance_ids"],
            steps=request.get("steps", 1),
            worker=resolve_worker(request.get("worker", self.worker_spec)),
        )
        self.telemetry.add("steps", sum(result.steps for result in results))
        return [result.to_dict() for result in results]

    def _op_start_activity(self, request: Dict[str, Any]) -> Dict[str, Any]:
        result = self._system().start_activity(
            request["instance_id"], request["activity_id"], user=request.get("user")
        )
        return result.to_dict()

    def _op_complete(self, request: Dict[str, Any]) -> Dict[str, Any]:
        result = self._system().complete(
            request["instance_id"],
            request["activity_id"],
            outputs=request.get("outputs"),
            user=request.get("user"),
        )
        self.telemetry.add("steps")
        return result.to_dict()

    def _op_activated(self, request: Dict[str, Any]) -> List[str]:
        return self._system().activated(request["instance_id"])

    def _op_abort(self, request: Dict[str, Any]) -> Dict[str, Any]:
        self._system().abort(request["instance_id"])
        return {}

    def _op_delete_instance(self, request: Dict[str, Any]) -> Dict[str, Any]:
        return {"deleted": self._system().delete_instance(request["instance_id"])}

    def _op_instance_info(self, request: Dict[str, Any]) -> Dict[str, Any]:
        system = self._system()
        instance = system.get_instance(request["instance_id"])
        return {
            "instance_id": instance.instance_id,
            "type_id": instance.process_type,
            "version": instance.schema_version,
            "status": instance.status.value,
            "activated": instance.activated_activities(),
            "completed": instance.completed_activities(),
            "state_fingerprint": instance.state_fingerprint(),
        }

    def _op_instances_of(self, request: Dict[str, Any]) -> List[str]:
        handles = self._system().instances_of(
            request["type_id"], version=request.get("version")
        )
        return sorted(handle.instance_id for handle in handles)

    # ------------------------------------------------------------------ #
    # the versioned two-phase schema broadcast
    # ------------------------------------------------------------------ #

    def _op_evolve_publish(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Phase 1: validate and stage a schema change, commit nothing.

        The router publishes the change to *every* shard first; only when
        all shards accepted does phase 2 activate it.  The version check
        is the broadcast's safety property — a shard whose type is not at
        the expected version (missed a previous broadcast, restored from
        an old snapshot) refuses, and the router aborts everywhere instead
        of splitting the fleet across schema versions.
        """
        system = self._system()
        type_id = request["type_id"]
        type_change = TypeChange.from_dict(request["change"])
        expect = request.get("expect_version", type_change.from_version)
        process_type = system.repository.process_type(type_id)
        if process_type.latest_version != expect:
            raise ServiceError(
                f"shard {self.shard_id!r} has {type_id!r} at version "
                f"{process_type.latest_version}, broadcast expects {expect}"
            )
        if type_change.from_version != process_type.latest_version:
            raise ServiceError(
                f"change targets version {type_change.from_version}, "
                f"shard is at {process_type.latest_version}"
            )
        if system.rollout_of(type_id) is not None:
            raise ServiceError(
                f"shard {self.shard_id!r} still has a rollout of {type_id!r} in flight"
            )
        token = secrets.token_hex(8)
        with self._staged_lock:
            self._staged[token] = (type_id, type_change, expect)
        self.telemetry.add("change_propagation")
        return {
            "token": token,
            "shard_id": self.shard_id,
            "from_version": process_type.latest_version,
            "to_version": type_change.to_version,
        }

    def _pop_staged(self, token: str) -> Tuple[str, TypeChange, int]:
        with self._staged_lock:
            staged = self._staged.pop(token, None)
        if staged is None:
            raise ServiceError(f"no staged evolution for token {token!r}")
        return staged

    def _op_evolve_activate(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Phase 2: commit a staged change (eager migrate or rollout)."""
        system = self._system()
        type_id, type_change, _expect = self._pop_staged(request["token"])
        mode = request.get("rollout", ROLLOUT_EAGER)
        if mode == ROLLOUT_EAGER:
            report = system.evolve(
                type_id,
                type_change,
                migrate=request.get("migrate", "compliant"),
                collect_results=False,
            )
            self.telemetry.add("migration", report.migrated_count)
            return {
                "shard_id": self.shard_id,
                "mode": mode,
                "from_version": report.from_version,
                "to_version": report.to_version,
                "total": report.total,
                "migrated": report.migrated_count,
                "outcomes": report.outcome_counts(),
            }
        if mode not in (ROLLOUT_LAZY, ROLLOUT_CANARY):
            raise ServiceError(f"unknown rollout mode {mode!r}")
        rollout = system.evolve(
            type_id,
            type_change,
            rollout=mode,
            fraction=request.get("fraction", 0.1),
            conflict_threshold=request.get("conflict_threshold", 0.5),
            min_observations=request.get("min_observations", 20),
            canary_policy=request.get("policy", "revert"),
            # shard-local canaries never self-decide: each shard sees only
            # its partition's attempts, the router sees the fleet's
            canary_decide="external" if mode == ROLLOUT_CANARY else "auto",
        )
        if request.get("sweep") and mode == ROLLOUT_LAZY:
            sweeper = RolloutSweeper(system, type_id)
            self._sweepers[type_id] = sweeper
            sweeper.start()
        return {"shard_id": self.shard_id, "mode": mode, **rollout.progress()}

    def _op_evolve_abort(self, request: Dict[str, Any]) -> Dict[str, Any]:
        with self._staged_lock:
            staged = self._staged.pop(request["token"], None)
        return {"aborted": staged is not None}

    def _op_evolve_abort_type(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Drop any staged change for a type (the router lost the token).

        A publish broadcast that failed part-way leaves stages on the
        shards that accepted; the router no longer knows their tokens, so
        the abort is keyed by type instead.
        """
        type_id = request["type_id"]
        with self._staged_lock:
            tokens = [
                token
                for token, (staged_type, _change, _expect) in self._staged.items()
                if staged_type == type_id
            ]
            for token in tokens:
                del self._staged[token]
        return {"aborted": len(tokens)}

    def _op_case_ids(self, request: Dict[str, Any]) -> List[str]:
        """Every case id this shard owns (live or stored) — rebalancing input."""
        system = self._system()
        with system._registry:
            live = set(system._instances)
        return sorted(live | set(system.store.instance_ids()))

    def _op_rollout_status(self, request: Dict[str, Any]) -> Optional[Dict[str, Any]]:
        return self._system().rollout_status(request["type_id"])

    def _op_rollout_decide(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Apply the router's aggregated canary verdict on this shard."""
        system = self._system()
        decision = request["decision"]
        rollout = system.rollout_of(request["type_id"])
        if rollout is None or rollout.state != "observing":
            return {"applied": False}
        if decision == "promote":
            system._promote_rollout(request["type_id"])
        elif decision == "rollback":
            system._rollback_rollout(request["type_id"])
        else:
            raise ServiceError(f"unknown rollout decision {decision!r}")
        return {"applied": True}

    def _op_sweep_rollout(self, request: Dict[str, Any]) -> Dict[str, Any]:
        swept = self._system().sweep_rollout(
            request["type_id"], max_cases=request.get("max_cases", 256)
        )
        self.telemetry.add("migration", swept)
        return {"swept": swept}

    # ------------------------------------------------------------------ #
    # worklist
    # ------------------------------------------------------------------ #

    def _op_worklist(self, request: Dict[str, Any]) -> List[Dict[str, Any]]:
        items = self._system().worklist(request["user"])
        return [_item_payload(item) for item in items]

    def _op_claim(self, request: Dict[str, Any]) -> Dict[str, Any]:
        item = self._system().claim(request["item_id"], request["user"])
        return _item_payload(item)

    def _op_complete_item(self, request: Dict[str, Any]) -> Dict[str, Any]:
        item = self._system().complete_item(
            request["item_id"], outputs=request.get("outputs")
        )
        self.telemetry.add("steps")
        return _item_payload(item)

    # ------------------------------------------------------------------ #
    # cross-shard case handover
    # ------------------------------------------------------------------ #

    def _op_export_case(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Serialise a case and drop local ownership (handover out)."""
        system = self._system()
        instance = system.get_instance(request["instance_id"])
        record = system.store.encode_record(instance)
        system.delete_instance(request["instance_id"])
        self.telemetry.add("handover")
        return {"record": record}

    def _op_import_case(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Adopt a case exported by another shard (handover in)."""
        system = self._system()
        instance = system.store.instantiate(request["record"])
        handle = system.adopt_instance(instance)
        self.telemetry.add("handover")
        return {"instance_id": handle.instance_id}

    # ------------------------------------------------------------------ #
    # durability
    # ------------------------------------------------------------------ #

    def _op_wal_summary(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Counters over this shard's WAL, for exactly-once verification.

        The drill in the sharded benchmark checks that an evolve-under-load
        journaled exactly one evolution record per shard whose candidate
        lists partition the population, and that no case ever appears in
        two shards' records.
        """
        system = self._system()
        backend = system.backend
        if backend is None:
            raise ServiceError(f"shard {self.shard_id!r} is not durable")
        counts: Dict[str, int] = {}
        evolutions: List[Dict[str, Any]] = []
        rollout_migrated: List[str] = []
        steps_by_instance: Dict[str, int] = {}
        for record in backend.wal.records():
            kind = record.get("kind", "")
            counts[kind] = counts.get(kind, 0) + 1
            if kind == KIND_EVOLUTION:
                evolutions.append(
                    {
                        "type_id": record.get("type_id"),
                        "to_version": record.get("to_version"),
                        "policy": record.get("policy"),
                        "candidates": list(record.get("candidates", [])),
                    }
                )
            elif kind == KIND_ROLLOUT_MIGRATED:
                rollout_migrated.append(record.get("instance_id", ""))
            elif kind == KIND_STEP and record.get("action") == "complete":
                instance_id = record.get("instance_id", "")
                steps_by_instance[instance_id] = steps_by_instance.get(instance_id, 0) + 1
        return {
            "shard_id": self.shard_id,
            "counts": counts,
            "evolutions": evolutions,
            "rollout_migrated": rollout_migrated,
            "steps_by_instance": steps_by_instance,
        }

    def _op_checkpoint(self, request: Dict[str, Any]) -> Dict[str, Any]:
        self._system().checkpoint()
        return {}

    def _op_serve(self, request: Dict[str, Any]) -> Dict[str, Any]:
        workers = request.get("workers", 4)
        self._system().serve(
            workers=workers,
            worker=resolve_worker(request.get("worker", self.worker_spec)),
        )
        self.workers = workers
        return {"workers": workers}

    def _op_drain(self, request: Dict[str, Any]) -> Dict[str, Any]:
        stats = self._system().drain(timeout=request.get("timeout"))
        self.workers = 0
        return {
            "workers": stats.workers,
            "items_completed": stats.items_completed,
            "steals": stats.steals,
            "stale_claims": stats.stale_claims,
        }

    def _op_shutdown(self, request: Dict[str, Any]) -> Dict[str, Any]:
        # respond first, then let the waiter in main()/stop() tear down —
        # the client gets its ack before the listener closes
        self.initiate_shutdown()
        return {"stopping": True}


def _item_payload(item: Any) -> Dict[str, Any]:
    return {
        "item_id": item.item_id,
        "instance_id": item.instance_id,
        "activity_id": item.activity_id,
        "role": item.role,
        "state": item.state.value,
        "claimed_by": item.claimed_by,
    }


def _error_payload(exc: Exception) -> Dict[str, Any]:
    return {
        "ok": False,
        "error": {"type": type(exc).__name__, "message": str(exc)},
    }


# ---------------------------------------------------------------------- #
# process entry point
# ---------------------------------------------------------------------- #


def run_shard_server(argv: Optional[List[str]] = None) -> int:
    """Run one shard process until a signal or a ``shutdown`` RPC.

    SIGTERM and SIGINT both trigger the *graceful* path: stop accepting,
    drain the worker pool, flush the group-commit WAL batches and write a
    checkpoint through the (idempotent) ``AdeptSystem.close``.
    """
    parser = argparse.ArgumentParser(
        prog="python -m repro.service.shard_server",
        description="Serve one durable AdeptSystem partition as a shard.",
    )
    parser.add_argument("--shard-id", required=True)
    parser.add_argument("--store", required=True, help="this shard's store directory")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0, help="0 = OS-assigned")
    parser.add_argument("--workers", type=int, default=0, help="worker pool size")
    parser.add_argument("--worker", default="", help="worker spec (e.g. simulated_latency:0.002)")
    parser.add_argument("--cache-instances", type=int, default=None)
    args = parser.parse_args(argv)

    server = ShardServer(
        args.shard_id,
        store=args.store,
        host=args.host,
        port=args.port,
        workers=args.workers,
        worker=args.worker,
        cache_instances=args.cache_instances,
    )

    def _on_signal(signum: int, frame: Any) -> None:
        server.initiate_shutdown()

    signal.signal(signal.SIGTERM, _on_signal)
    signal.signal(signal.SIGINT, _on_signal)

    server.start_in_thread()
    try:
        server.wait()
    finally:
        server.stop()
    return 0


def main() -> None:  # pragma: no cover - thin wrapper
    sys.exit(run_shard_server())


if __name__ == "__main__":  # pragma: no cover
    main()
