"""A sha256 consistent-hash ring for instance-to-shard routing.

Routing must satisfy two properties the rest of the service tier builds
on:

* **determinism across processes** — the router, every shard and any
  monitoring client must agree on who owns a case id without talking to
  each other.  ``hash()`` is randomised per process (PYTHONHASHSEED),
  so the ring hashes with sha256 only.
* **minimal disruption** — adding or removing one shard must remap only
  ~K/N of K keys (each with ``replicas`` virtual points per shard, the
  classic consistent-hashing bound), so a rebalance hands over a small
  fraction of the population instead of reshuffling everything.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, Iterable, List, Sequence

from repro.service.errors import ServiceError

__all__ = ["HashRing"]


def _point(value: str) -> int:
    """A stable 64-bit position on the ring for ``value``."""
    return int.from_bytes(hashlib.sha256(value.encode("utf-8")).digest()[:8], "big")


class HashRing:
    """Consistent hashing of string keys onto named shards.

    Each shard contributes ``replicas`` virtual points; a key is owned
    by the shard of the first point at or after the key's own position
    (wrapping around).  With the default 128 replicas the load spread
    between shards stays within a few tens of percent, and a membership
    change moves only the keys between the affected points.
    """

    def __init__(self, shard_ids: Iterable[str], replicas: int = 128) -> None:
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        self.replicas = replicas
        self._shards: List[str] = []
        self._points: List[int] = []
        self._owners: List[str] = []
        for shard_id in shard_ids:
            self.add_shard(shard_id)

    # ------------------------------------------------------------------ #
    # membership
    # ------------------------------------------------------------------ #

    @property
    def shard_ids(self) -> List[str]:
        """The member shards, in insertion order."""
        return list(self._shards)

    def __len__(self) -> int:
        return len(self._shards)

    def __contains__(self, shard_id: str) -> bool:
        return shard_id in self._shards

    def add_shard(self, shard_id: str) -> None:
        if shard_id in self._shards:
            raise ServiceError(f"shard {shard_id!r} is already on the ring")
        self._shards.append(shard_id)
        for replica in range(self.replicas):
            point = _point(f"{shard_id}#{replica}")
            index = bisect.bisect(self._points, point)
            self._points.insert(index, point)
            self._owners.insert(index, shard_id)

    def remove_shard(self, shard_id: str) -> None:
        if shard_id not in self._shards:
            raise ServiceError(f"shard {shard_id!r} is not on the ring")
        self._shards.remove(shard_id)
        keep = [
            (point, owner)
            for point, owner in zip(self._points, self._owners)
            if owner != shard_id
        ]
        self._points = [point for point, _ in keep]
        self._owners = [owner for _, owner in keep]

    # ------------------------------------------------------------------ #
    # routing
    # ------------------------------------------------------------------ #

    def shard_for(self, key: str) -> str:
        """The shard owning ``key`` (raises when the ring is empty)."""
        if not self._points:
            raise ServiceError("hash ring has no shards")
        index = bisect.bisect(self._points, _point(key))
        if index == len(self._points):
            index = 0
        return self._owners[index]

    def partition(self, keys: Sequence[str]) -> Dict[str, List[str]]:
        """Group ``keys`` by owning shard, preserving input order per shard."""
        groups: Dict[str, List[str]] = {}
        for key in keys:
            groups.setdefault(self.shard_for(key), []).append(key)
        return groups

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"HashRing(shards={self._shards}, replicas={self.replicas})"
