"""Errors of the sharded service tier."""

from __future__ import annotations

from repro.errors import ReproError


class ServiceError(ReproError):
    """Base class for every service-tier failure."""


class ShardProtocolError(ServiceError):
    """A frame on the wire was malformed or truncated."""


class ShardUnavailableError(ServiceError):
    """A shard could not be reached (crashed, restarting, or gone).

    The router raises this for exactly the shard(s) that failed; calls
    routed to the surviving shards keep succeeding — partition ownership
    makes failures independent.
    """

    def __init__(self, shard_id: str, message: str) -> None:
        super().__init__(f"shard {shard_id!r} unavailable: {message}")
        self.shard_id = shard_id


class RemoteError(ServiceError):
    """A shard executed the request and reported a failure.

    Carries the remote exception's class name so callers can
    distinguish, e.g., a lost claim race (``EngineError``) from a
    migration refusal (``MigrationError``).
    """

    def __init__(self, shard_id: str, remote_type: str, message: str) -> None:
        super().__init__(f"[{shard_id}] {remote_type}: {message}")
        self.shard_id = shard_id
        self.remote_type = remote_type
        self.remote_message = message
