"""Write-ahead log for instance state changes.

Every instance save is appended to the WAL before the instance store's
namespace file is rewritten; after a crash the store replays the log on
top of the last checkpoint.  The log is deliberately simple (JSON lines)
— its purpose in the reproduction is to demonstrate that the hybrid
storage representation composes with standard recovery techniques, and to
give the failure-injection tests something real to exercise.

**Thread safety and group commit.**  The log is safe to append from many
threads.  Appends are split into two phases: :meth:`enqueue` serialises
the record and adds its line to a pending buffer (cheap, under a mutex),
:meth:`commit` makes it durable.  When several threads commit at once,
the first to reach the flush lock becomes the *leader* and writes and
flushes every pending line in one batch; the followers find their record
already durable and return without touching the file.  This is classic
group commit: journaling many concurrent mutations costs one buffered
write + flush per *batch* instead of per record, so the WAL does not
re-serialise an otherwise parallel execution.  A record is committed —
and its mutation may be acknowledged — only once its complete line is in
the OS file; a crash can tear at most the batch currently being written,
and recovery ignores the torn tail.
"""

from __future__ import annotations

import json
import threading
from pathlib import Path
from typing import Any, Dict, Iterator, List, Mapping, Optional


class WriteAheadLog:
    """Append-only JSON-lines log with checkpoint and group-commit support.

    The log keeps one append handle open between writes (every committed
    batch is flushed to the OS, so the file content is always current for
    readers) — opening the file per record would dominate the cost of
    journaling high-frequency step records.  :meth:`close` releases the
    handle; the log transparently reopens it on the next append.
    """

    def __init__(self, path: Optional[str] = None) -> None:
        self._path = Path(path) if path else None
        self._memory: List[Dict[str, Any]] = []
        self._handle = None
        #: guards the pending buffer, counters and the in-memory list
        self._mutex = threading.Lock()
        #: serialises physical writes; the holder is the batch leader
        self._flush_lock = threading.Lock()
        self._pending: List[str] = []
        self._enqueued = 0
        self._committed = 0
        #: number of physical write+flush batches (group-commit telemetry)
        self.flush_count = 0
        #: number of records ever enqueued (group-commit telemetry)
        self.append_count = 0
        if self._path is not None:
            self._path.parent.mkdir(parents=True, exist_ok=True)
            if not self._path.exists():
                self._path.touch()

    # ------------------------------------------------------------------ #
    # appending (enqueue + group commit)
    # ------------------------------------------------------------------ #

    def enqueue(self, record: Mapping[str, Any]) -> int:
        """Buffer one record (must be JSON serialisable); returns a ticket.

        The record is *not* durable until :meth:`commit` is called with
        the ticket (or any later ticket).  Callers that must order their
        records relative to their own bookkeeping (the persistence
        backend's sequence numbers) enqueue under their own lock — the
        pending buffer preserves enqueue order — and commit outside it.
        """
        entry = dict(record)
        line = json.dumps(entry, sort_keys=True) + "\n"
        with self._mutex:
            self.append_count += 1
            if self._path is None:
                self._memory.append(entry)
                self._enqueued += 1
                self._committed = self._enqueued
                return self._committed
            self._pending.append(line)
            self._enqueued += 1
            return self._enqueued

    def commit(self, ticket: int) -> None:
        """Make every record up to ``ticket`` durable (group commit)."""
        if self._path is None:
            return
        while True:
            with self._mutex:
                if self._committed >= ticket:
                    return
            with self._flush_lock:
                with self._mutex:
                    if self._committed >= ticket:
                        return
                    batch = self._pending
                    self._pending = []
                    if self._handle is None:
                        self._open_handle()
                    handle = self._handle
                # the physical write happens outside the mutex (so new
                # appends keep buffering) but under the flush lock (so
                # close/truncate cannot pull the handle away mid-write)
                handle.write("".join(batch))
                handle.flush()
                with self._mutex:
                    self._committed += len(batch)
                    self.flush_count += 1

    def append(self, record: Mapping[str, Any]) -> None:
        """Append one record and wait until it is durable."""
        self.commit(self.enqueue(record))

    def _open_handle(self) -> None:
        """Open the append handle, dropping any torn tail first.

        A crash can leave a partial line at the end of the file.
        :meth:`records` tolerates it on read, but appending *after* it
        would glue the next record onto the unparseable fragment — one
        bad line that hides the entire post-recovery suffix from every
        future replay.  Before the first append the log therefore
        rewrites itself to end at the last complete record (restoring a
        missing final newline along the way).  Recovery itself never
        appends, so replaying a cut log is still byte-preserving.

        Caller holds ``_flush_lock`` and ``_mutex``.
        """
        raw = self._path.read_bytes()
        valid = bytearray()
        for line in raw.splitlines():
            if not line.strip():
                continue
            try:
                json.loads(line.decode("utf-8"))
            except (UnicodeDecodeError, ValueError):
                break
            valid += line + b"\n"
        if bytes(valid) != raw:
            self._path.write_bytes(bytes(valid))
        self._handle = self._path.open("a", encoding="utf-8")

    # ------------------------------------------------------------------ #
    # reading / maintenance
    # ------------------------------------------------------------------ #

    def records(self) -> List[Dict[str, Any]]:
        """All committed records currently in the log (oldest first).

        Torn trailing lines (from a crash in the middle of a batch write)
        are ignored.
        """
        if self._path is None:
            with self._mutex:
                return [dict(entry) for entry in self._memory]
        entries: List[Dict[str, Any]] = []
        if not self._path.exists():
            return entries
        for line in self._path.read_text(encoding="utf-8").splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                entries.append(json.loads(line))
            except json.JSONDecodeError:
                break
        return entries

    def truncate(self) -> None:
        """Drop all records (called after a successful checkpoint).

        Pending (enqueued but uncommitted) records are dropped with the
        rest — a checkpoint runs with every mutator quiesced, so the
        buffer is empty in correct use.
        """
        with self._flush_lock:
            with self._mutex:
                self._pending = []
                self._committed = self._enqueued
                if self._path is None:
                    self._memory.clear()
                    return
                if self._handle is not None:
                    self._handle.close()
                    self._handle = None
            self._path.write_text("", encoding="utf-8")

    def close(self) -> None:
        """Release the append handle (reopened transparently on next append)."""
        with self._flush_lock:
            with self._mutex:
                if self._handle is not None:
                    self._handle.close()
                    self._handle = None

    def size_bytes(self) -> int:
        """Current size of the log in bytes (0 for in-memory logs)."""
        if self._path is None or not self._path.exists():
            return 0
        return self._path.stat().st_size

    @property
    def path(self) -> Optional[Path]:
        """The backing file (``None`` for in-memory logs)."""
        return self._path

    def __len__(self) -> int:
        return len(self.records())

    def __iter__(self) -> Iterator[Dict[str, Any]]:
        return iter(self.records())
