"""Write-ahead log for instance state changes.

Every instance save is appended to the WAL before the instance store's
namespace file is rewritten; after a crash the store replays the log on
top of the last checkpoint.  The log is deliberately simple (JSON lines)
— its purpose in the reproduction is to demonstrate that the hybrid
storage representation composes with standard recovery techniques, and to
give the failure-injection tests something real to exercise.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterator, List, Mapping, Optional


class WriteAheadLog:
    """Append-only JSON-lines log with checkpoint support.

    The log keeps one append handle open between writes (every append is
    flushed to the OS, so the file content is always current for readers)
    — opening the file per record would dominate the cost of journaling
    high-frequency step records.  :meth:`close` releases the handle; the
    log transparently reopens it on the next append.
    """

    def __init__(self, path: Optional[str] = None) -> None:
        self._path = Path(path) if path else None
        self._memory: List[Dict[str, Any]] = []
        self._handle = None
        if self._path is not None:
            self._path.parent.mkdir(parents=True, exist_ok=True)
            if not self._path.exists():
                self._path.touch()

    # ------------------------------------------------------------------ #

    def append(self, record: Mapping[str, Any]) -> None:
        """Append one record (must be JSON serialisable)."""
        entry = dict(record)
        line = json.dumps(entry, sort_keys=True)
        if self._path is not None:
            if self._handle is None:
                self._handle = self._path.open("a", encoding="utf-8")
            self._handle.write(line + "\n")
            self._handle.flush()
        else:
            self._memory.append(entry)

    def records(self) -> List[Dict[str, Any]]:
        """All records currently in the log (oldest first).

        Torn trailing lines (from a crash in the middle of a write) are
        ignored.
        """
        if self._path is None:
            return list(self._memory)
        entries: List[Dict[str, Any]] = []
        if not self._path.exists():
            return entries
        for line in self._path.read_text(encoding="utf-8").splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                entries.append(json.loads(line))
            except json.JSONDecodeError:
                break
        return entries

    def truncate(self) -> None:
        """Drop all records (called after a successful checkpoint)."""
        if self._path is not None:
            self.close()
            self._path.write_text("", encoding="utf-8")
        else:
            self._memory.clear()

    def close(self) -> None:
        """Release the append handle (reopened transparently on next append)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def size_bytes(self) -> int:
        """Current size of the log in bytes (0 for in-memory logs)."""
        if self._path is None or not self._path.exists():
            return 0
        return self._path.stat().st_size

    @property
    def path(self) -> Optional[Path]:
        """The backing file (``None`` for in-memory logs)."""
        return self._path

    def __len__(self) -> int:
        return len(self.records())

    def __iter__(self) -> Iterator[Dict[str, Any]]:
        return iter(self.records())
