"""Write-ahead log for instance state changes.

Every instance save is appended to the WAL before the instance store's
namespace file is rewritten; after a crash the store replays the log on
top of the last checkpoint.  The log is deliberately simple (JSON lines)
— its purpose in the reproduction is to demonstrate that the hybrid
storage representation composes with standard recovery techniques, and to
give the failure-injection tests something real to exercise.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterator, List, Mapping, Optional


class WriteAheadLog:
    """Append-only JSON-lines log with checkpoint support."""

    def __init__(self, path: Optional[str] = None) -> None:
        self._path = Path(path) if path else None
        self._memory: List[Dict[str, Any]] = []
        if self._path is not None:
            self._path.parent.mkdir(parents=True, exist_ok=True)
            if not self._path.exists():
                self._path.touch()

    # ------------------------------------------------------------------ #

    def append(self, record: Mapping[str, Any]) -> None:
        """Append one record (must be JSON serialisable)."""
        entry = dict(record)
        line = json.dumps(entry, sort_keys=True)
        if self._path is not None:
            with self._path.open("a", encoding="utf-8") as handle:
                handle.write(line + "\n")
        else:
            self._memory.append(entry)

    def records(self) -> List[Dict[str, Any]]:
        """All records currently in the log (oldest first).

        Torn trailing lines (from a crash in the middle of a write) are
        ignored.
        """
        if self._path is None:
            return list(self._memory)
        entries: List[Dict[str, Any]] = []
        if not self._path.exists():
            return entries
        for line in self._path.read_text(encoding="utf-8").splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                entries.append(json.loads(line))
            except json.JSONDecodeError:
                break
        return entries

    def truncate(self) -> None:
        """Drop all records (called after a successful checkpoint)."""
        if self._path is not None:
            self._path.write_text("", encoding="utf-8")
        else:
            self._memory.clear()

    def __len__(self) -> int:
        return len(self.records())

    def __iter__(self) -> Iterator[Dict[str, Any]]:
        return iter(self.records())
