"""The instance store: persisting and re-loading process instances.

Combines the schema repository (shared schema versions), a representation
strategy (how instance-specific schemas are stored — Fig. 2), the
key-value store (persistence), the write-ahead log (recovery) and the
secondary indexes (efficient querying by type / version / status).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Mapping, Optional

from repro.errors import ReproError
from repro.runtime.instance import ProcessInstance
from repro.storage.indexes import InstanceIndex
from repro.storage.kv import KeyValueStore
from repro.storage.repository import SchemaRepository
from repro.storage.representations import HybridSubstitutionRepresentation, RepresentationStrategy
from repro.storage.serialization import instance_from_dict, instance_to_dict
from repro.storage.wal import WriteAheadLog

_NAMESPACE = "instances"


class StorageError(ReproError):
    """Raised when an instance cannot be stored or loaded."""


@dataclass
class StoredInstance:
    """Size accounting for one stored instance (used by benchmark E2)."""

    instance_id: str
    total_bytes: int
    schema_payload_bytes: int
    biased: bool


class InstanceStore:
    """Persists process instances using a pluggable representation strategy."""

    def __init__(
        self,
        repository: SchemaRepository,
        strategy: Optional[RepresentationStrategy] = None,
        store: Optional[KeyValueStore] = None,
        wal: Optional[WriteAheadLog] = None,
    ) -> None:
        self.repository = repository
        self.strategy = strategy or HybridSubstitutionRepresentation()
        self._store = store or KeyValueStore()
        self._wal = wal
        self.index = InstanceIndex()
        # one reentrant lock serialises record/index mutations and makes
        # every query a consistent snapshot — the store is shared by all
        # worker threads of the façade (innermost in its lock hierarchy)
        self._lock = threading.RLock()
        self._rebuild_index()

    # ------------------------------------------------------------------ #
    # save / load / delete
    # ------------------------------------------------------------------ #

    def encode_record(self, instance: ProcessInstance) -> Dict[str, Any]:
        """The full stored record of an instance (state + schema representation)."""
        record = instance_to_dict(instance)
        schema_part = self.strategy.encode(instance)
        record["representation"] = {"strategy": self.strategy.name, **schema_part}
        return record

    def save(self, instance: ProcessInstance) -> StoredInstance:
        """Persist an instance and return its size accounting."""
        if not self.repository.has_type(instance.process_type):
            raise StorageError(
                f"process type {instance.process_type!r} is not registered in the schema repository"
            )
        record = self.encode_record(instance)
        schema_part = {
            key: value
            for key, value in record["representation"].items()
            if key != "strategy"
        }
        if self._wal is not None:
            self._wal.append({"action": "save", "record": record})
        with self._lock:
            self._store.put(_NAMESPACE, instance.instance_id, record)
            self.index.add(instance.instance_id, record)
        return StoredInstance(
            instance_id=instance.instance_id,
            total_bytes=len(self._render(record)),
            schema_payload_bytes=self.strategy.payload_size_bytes(schema_part),
            biased=bool(record.get("biased")),
        )

    def save_all(self, instances: Iterable[ProcessInstance]) -> List[StoredInstance]:
        """Persist many instances and return their size accounting."""
        return [self.save(instance) for instance in instances]

    def write_back(self, instance: ProcessInstance) -> None:
        """Fast-path persist without size accounting or WAL journaling.

        The LRU cache uses this when evicting a dirty instance: the state
        is already covered by the durability layer's logical WAL records,
        so the write-back only has to keep the store copy current — it
        skips the three ``json.dumps`` passes :meth:`save` spends on
        accounting and validation.
        """
        record = self.encode_record(instance)
        with self._lock:
            self._store.put(_NAMESPACE, instance.instance_id, record, validate=False)
            self.index.add(instance.instance_id, record)

    def load(self, instance_id: str) -> ProcessInstance:
        """Re-load an instance (materialising its execution schema if biased)."""
        with self._lock:
            record = self._store.get(_NAMESPACE, instance_id)
        if record is None:
            raise StorageError(f"unknown instance {instance_id!r}")
        return self._instantiate(record)

    def load_all(self, instance_ids: Optional[Iterable[str]] = None) -> List[ProcessInstance]:
        """Load several (or all) stored instances."""
        ids = list(instance_ids) if instance_ids is not None else self.instance_ids()
        return [self.load(instance_id) for instance_id in ids]

    def delete(self, instance_id: str) -> bool:
        """Remove a stored instance; returns True when it existed."""
        if self._wal is not None:
            self._wal.append({"action": "delete", "instance_id": instance_id})
        with self._lock:
            existed = self._store.delete(_NAMESPACE, instance_id)
            self.index.remove(instance_id)
        return existed

    def contains(self, instance_id: str) -> bool:
        with self._lock:
            return self._store.contains(_NAMESPACE, instance_id)

    def instance_ids(self) -> List[str]:
        with self._lock:
            return sorted(self._store.keys(_NAMESPACE))

    def record(self, instance_id: str) -> Dict[str, Any]:
        """The raw stored record (tests and the storage benchmark use this)."""
        with self._lock:
            record = self._store.get(_NAMESPACE, instance_id)
        if record is None:
            raise StorageError(f"unknown instance {instance_id!r}")
        return record

    def put_record(self, record: Mapping[str, Any]) -> None:
        """Insert a previously serialised record verbatim (snapshot load, WAL replay).

        Unlike :meth:`save` this neither re-encodes the instance nor journals
        to the write-ahead log — the record *is* the durable form.
        """
        payload = dict(record)
        with self._lock:
            self._store.put(_NAMESPACE, payload["instance_id"], payload)
            self.index.add(payload["instance_id"], payload)

    def scan_records(self) -> Iterable[tuple]:
        """``(instance_id, record)`` pairs of all stored instances (a snapshot)."""
        with self._lock:
            return list(self._store.scan(_NAMESPACE))

    def records_for(self, instance_ids: Iterable[str]) -> List[tuple]:
        """``(instance_id, record)`` pairs for a batch of ids, one lock trip.

        Unknown ids are silently skipped — the bulk-evolution scan uses
        this to classify a candidate batch from the stored representations
        without hydrating instances (and without taking the store lock
        once per candidate).
        """
        with self._lock:
            pairs = []
            for instance_id in instance_ids:
                record = self._store.get(_NAMESPACE, instance_id)
                if record is not None:
                    pairs.append((instance_id, record))
            return pairs

    def migrate_record(
        self,
        instance_id: str,
        schema_version: int,
        marking: Mapping[str, Any],
        updates: Optional[Mapping[str, Any]] = None,
    ) -> Dict[str, Any]:
        """Re-link a *stored* case to a new schema version in O(record).

        The bulk-evolution fast path applies a fingerprint class's shared
        verdict to store-resident members without materialising them: the
        record's ``schema_version`` and ``marking`` are rewritten in place
        (everything else — history, data, status — is untouched by an
        unbiased migration) and the secondary indexes move the case to the
        new version.  ``marking`` is the class's adapted-marking template
        in serialised form; it may be shared across members and must be
        treated as immutable.

        ``updates`` carries additional shared fields for *biased* class
        members (``bias``, ``biased``, ``representation`` — re-encoded
        once from the class representative); a key mapped to ``None`` is
        removed from the record.  Returns the rewritten record.
        """
        with self._lock:
            record = self._store.get(_NAMESPACE, instance_id)
            if record is None:
                raise StorageError(f"unknown instance {instance_id!r}")
            old_version = record.get("schema_version", 0)
            record = dict(record)
            record["schema_version"] = schema_version
            record["marking"] = marking
            if updates:
                for key, value in updates.items():
                    if value is None:
                        record.pop(key, None)
                    else:
                        record[key] = value
                self._store.put(_NAMESPACE, instance_id, record, validate=False)
                self.index.add(instance_id, record)
            else:
                self._store.put(_NAMESPACE, instance_id, record, validate=False)
                self.index.change_version(
                    instance_id, record.get("process_type", ""), old_version, schema_version
                )
        return record

    def instantiate(self, record: Mapping[str, Any]) -> ProcessInstance:
        """Rebuild a live :class:`ProcessInstance` from a raw stored record."""
        return self._instantiate(record)

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #

    def instances_of_type(self, process_type: str, version: Optional[int] = None) -> List[str]:
        """Instance ids of one type (optionally restricted to a schema version)."""
        with self._lock:
            if version is None:
                return self.index.by_type(process_type)
            return self.index.by_version(process_type, version)

    def running_instances(self) -> List[str]:
        """Instance ids that are still active."""
        with self._lock:
            return sorted(
                set(self.index.by_status("running"))
                | set(self.index.by_status("created"))
                | set(self.index.by_status("suspended"))
            )

    def running_instances_of_type(self, process_type: str) -> List[str]:
        """Active instance ids of one process type (migration candidates)."""
        with self._lock:
            return sorted(
                set(self.running_instances()) & set(self.index.by_type(process_type))
            )

    def running_instances_on_version(self, process_type: str, version: int) -> List[str]:
        """Active instance ids of one type still stored on ``version``.

        The progressive-rollout sweeper uses this as its residue query:
        cases the lazy touch path has not reached yet are exactly the
        active stored records still indexed under the old version.
        """
        with self._lock:
            return sorted(
                set(self.running_instances())
                & set(self.index.by_version(process_type, version))
            )

    def biased_instances(self) -> List[str]:
        with self._lock:
            return self.index.biased_instances()

    # ------------------------------------------------------------------ #
    # accounting & recovery
    # ------------------------------------------------------------------ #

    def total_bytes(self) -> int:
        """Approximate persisted size of all instance records."""
        return self._store.size_bytes(_NAMESPACE)

    def schema_payload_bytes(self) -> int:
        """Persisted bytes spent on per-instance schema representations."""
        total = 0
        for _, record in self._store.scan(_NAMESPACE):
            representation = dict(record.get("representation", {}))
            representation.pop("strategy", None)
            total += self.strategy.payload_size_bytes(representation)
        return total

    def recover_from_wal(self) -> int:
        """Re-apply WAL records on top of the current store content.

        Returns the number of replayed records.  Called after a simulated
        crash where the namespace file may lag behind the log.
        """
        if self._wal is None:
            return 0
        replayed = 0
        for entry in self._wal.records():
            action = entry.get("action")
            if action == "save" and "record" in entry:
                record = entry["record"]
                self._store.put(_NAMESPACE, record["instance_id"], record)
                self.index.add(record["instance_id"], record)
                replayed += 1
            elif action == "delete" and "instance_id" in entry:
                self._store.delete(_NAMESPACE, entry["instance_id"])
                self.index.remove(entry["instance_id"])
                replayed += 1
        return replayed

    def checkpoint(self) -> None:
        """Flush the store and truncate the WAL."""
        self._store.flush()
        if self._wal is not None:
            self._wal.truncate()

    # ------------------------------------------------------------------ #

    def _instantiate(self, record: Mapping[str, Any]) -> ProcessInstance:
        original = self.repository.resolve(record["process_type"], record["schema_version"])
        representation = record.get("representation", {})
        execution_schema = self.strategy.materialize_schema(
            representation, original, record["instance_id"]
        )
        return instance_from_dict(record, self.repository.resolve, execution_schema=execution_schema)

    def _rebuild_index(self) -> None:
        self.index.clear()
        for instance_id, record in self._store.scan(_NAMESPACE):
            self.index.add(instance_id, record)

    @staticmethod
    def _render(record: Mapping[str, Any]) -> str:
        import json

        return json.dumps(record, sort_keys=True)

    def __len__(self) -> int:
        with self._lock:
            return self._store.count(_NAMESPACE)
