"""Instance representation strategies (the design space of paper Fig. 2).

The paper discusses three ways of storing the schema of a process
instance:

* keep a **complete schema copy** per (biased) instance — simple but
  redundant;
* **materialise the instance-specific schema on the fly** from the
  original schema and the recorded change log on every access — compact
  but repeatedly pays the change-application cost;
* the ADEPT2 **hybrid**: unchanged instances only reference their original
  schema; biased instances keep a *minimal substitution block* that is
  overlaid on the original schema when the instance is accessed.

Each strategy implements the same two-method interface (``encode`` for
saving, ``materialize_schema`` for loading) so the instance store and the
storage benchmark can switch between them freely.
"""

from __future__ import annotations

import json
from abc import ABC, abstractmethod
from typing import Any, Dict, Mapping, Optional

from repro.core.changelog import ChangeLog
from repro.core.substitution import SubstitutionBlock
from repro.runtime.instance import ProcessInstance
from repro.schema.graph import ProcessSchema


class RepresentationStrategy(ABC):
    """How the (possibly instance-specific) schema of an instance is stored."""

    name: str = "abstract"
    #: True when :meth:`encode` output depends only on the *schemas* (no
    #: instance ids inside) — two same-bias instances then share one
    #: payload verbatim, which the bulk evolution engine exploits to
    #: rewrite migrated biased records without materialising them.
    instance_independent_payload: bool = True

    @abstractmethod
    def encode(self, instance: ProcessInstance) -> Dict[str, Any]:
        """The schema-related part of the stored record."""

    @abstractmethod
    def materialize_schema(
        self, record: Mapping[str, Any], original_schema: ProcessSchema, instance_id: str
    ) -> Optional[ProcessSchema]:
        """Rebuild the instance's execution schema (``None`` = use the original)."""

    def payload_size_bytes(self, record: Mapping[str, Any]) -> int:
        """Approximate persisted size of the schema-related record part."""
        return len(json.dumps(record, sort_keys=True))


class FullCopyRepresentation(RepresentationStrategy):
    """Baseline: store a complete schema copy for every instance."""

    name = "full_copy"
    # the copied schema embeds the per-instance ``schema_id``
    instance_independent_payload = False

    def encode(self, instance: ProcessInstance) -> Dict[str, Any]:
        return {"schema_copy": instance.execution_schema.to_dict()}

    def materialize_schema(
        self, record: Mapping[str, Any], original_schema: ProcessSchema, instance_id: str
    ) -> Optional[ProcessSchema]:
        payload = record.get("schema_copy")
        if payload is None:
            return None
        return ProcessSchema.from_dict(payload)


class MaterializeOnAccessRepresentation(RepresentationStrategy):
    """Baseline: store only the change log; re-apply it on every access."""

    name = "materialize_on_access"

    def encode(self, instance: ProcessInstance) -> Dict[str, Any]:
        if isinstance(instance.bias, ChangeLog) and len(instance.bias) > 0:
            return {"bias_log": instance.bias.to_dict()}
        return {}

    def materialize_schema(
        self, record: Mapping[str, Any], original_schema: ProcessSchema, instance_id: str
    ) -> Optional[ProcessSchema]:
        payload = record.get("bias_log")
        if not payload:
            return None
        bias = ChangeLog.from_dict(payload)
        schema = bias.apply_to(original_schema, check=True)
        schema.schema_id = f"{original_schema.schema_id}+{instance_id}"
        return schema


class HybridSubstitutionRepresentation(RepresentationStrategy):
    """ADEPT2: reference for unbiased instances, substitution block for biased ones."""

    name = "hybrid_substitution"

    def encode(self, instance: ProcessInstance) -> Dict[str, Any]:
        if not instance.is_biased:
            return {}
        block = SubstitutionBlock.from_schemas(instance.original_schema, instance.execution_schema)
        if block.is_empty():
            return {}
        return {"substitution_block": block.to_dict()}

    def materialize_schema(
        self, record: Mapping[str, Any], original_schema: ProcessSchema, instance_id: str
    ) -> Optional[ProcessSchema]:
        payload = record.get("substitution_block")
        if not payload:
            return None
        block = SubstitutionBlock.from_dict(payload)
        return block.overlay(original_schema, schema_id=f"{original_schema.schema_id}+{instance_id}")


def strategy_by_name(name: str) -> RepresentationStrategy:
    """Look up a representation strategy by its ``name`` attribute."""
    strategies = {
        FullCopyRepresentation.name: FullCopyRepresentation,
        MaterializeOnAccessRepresentation.name: MaterializeOnAccessRepresentation,
        HybridSubstitutionRepresentation.name: HybridSubstitutionRepresentation,
    }
    if name not in strategies:
        raise ValueError(f"unknown representation strategy {name!r}")
    return strategies[name]()
