"""Secondary indexes over the instance store.

The migration manager needs "all running instances of type T on version
V" quickly even with thousands of stored instances; these simple inverted
indexes (by process type, schema version, status and bias flag) provide
that without scanning every record.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Set


class InstanceIndex:
    """Inverted indexes over stored instance records."""

    def __init__(self) -> None:
        self._by_type: Dict[str, Set[str]] = {}
        self._by_version: Dict[tuple, Set[str]] = {}
        self._by_status: Dict[str, Set[str]] = {}
        self._biased: Set[str] = set()

    # ------------------------------------------------------------------ #

    def add(self, instance_id: str, record: Mapping) -> None:
        """Index (or re-index) one stored record."""
        self.remove(instance_id)
        process_type = record.get("process_type", "")
        version = record.get("schema_version", 0)
        status = record.get("status", "")
        self._by_type.setdefault(process_type, set()).add(instance_id)
        self._by_version.setdefault((process_type, version), set()).add(instance_id)
        self._by_status.setdefault(status, set()).add(instance_id)
        if record.get("biased"):
            self._biased.add(instance_id)

    def change_version(
        self, instance_id: str, process_type: str, old_version: int, new_version: int
    ) -> None:
        """Move one instance to a new schema version (bulk-migration hot path).

        Equivalent to a full re-``add`` of the rewritten record, but only
        the two affected version buckets are touched — type, status and
        bias flags are unchanged by an unbiased migration.
        """
        bucket = self._by_version.get((process_type, old_version))
        if bucket is not None:
            bucket.discard(instance_id)
        self._by_version.setdefault((process_type, new_version), set()).add(instance_id)

    def remove(self, instance_id: str) -> None:
        """Drop an instance from every index."""
        for bucket in self._by_type.values():
            bucket.discard(instance_id)
        for bucket in self._by_version.values():
            bucket.discard(instance_id)
        for bucket in self._by_status.values():
            bucket.discard(instance_id)
        self._biased.discard(instance_id)

    def clear(self) -> None:
        self._by_type.clear()
        self._by_version.clear()
        self._by_status.clear()
        self._biased.clear()

    # ------------------------------------------------------------------ #

    def by_type(self, process_type: str) -> List[str]:
        """Instance ids of one process type."""
        return sorted(self._by_type.get(process_type, set()))

    def by_version(self, process_type: str, version: int) -> List[str]:
        """Instance ids of one process type running on a specific version."""
        return sorted(self._by_version.get((process_type, version), set()))

    def by_status(self, status: str) -> List[str]:
        """Instance ids currently in one lifecycle status."""
        return sorted(self._by_status.get(status, set()))

    def biased_instances(self) -> List[str]:
        """Instance ids carrying ad-hoc modifications."""
        return sorted(self._biased)

    def counts_by_version(self, process_type: str) -> Dict[int, int]:
        """Mapping of schema version to number of instances of the type."""
        counts: Dict[int, int] = {}
        for (type_name, version), bucket in self._by_version.items():
            if type_name == process_type and bucket:
                counts[version] = len(bucket)
        return counts
