"""A small namespaced key-value store with optional file persistence.

The reproduction does not depend on an external DBMS; this store provides
just enough database behaviour for the schema repository and the instance
store: namespaced JSON documents, atomic file persistence per namespace
and size accounting (the storage benchmark measures persisted bytes).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterator, List, Mapping, Optional, Tuple


class KeyValueStore:
    """Namespaced JSON document store (in memory, optionally file backed)."""

    def __init__(self, directory: Optional[str] = None) -> None:
        self._namespaces: Dict[str, Dict[str, Any]] = {}
        self._directory = Path(directory) if directory else None
        if self._directory is not None:
            self._directory.mkdir(parents=True, exist_ok=True)
            self._load_all()

    # ------------------------------------------------------------------ #
    # basic operations
    # ------------------------------------------------------------------ #

    def put(
        self, namespace: str, key: str, value: Mapping[str, Any], validate: bool = True
    ) -> None:
        """Store a JSON-serialisable document under ``namespace``/``key``.

        ``validate=False`` skips the fail-fast serialisability check — used
        by hot write-back paths whose payloads come straight from the
        canonical instance serialisation.
        """
        if validate:
            json.dumps(value)  # fail fast on non-serialisable content
        self._namespaces.setdefault(namespace, {})[key] = value
        self._persist(namespace)

    def get(self, namespace: str, key: str, default: Any = None) -> Any:
        """Fetch a document (or ``default`` when absent)."""
        return self._namespaces.get(namespace, {}).get(key, default)

    def delete(self, namespace: str, key: str) -> bool:
        """Remove a document; returns True when it existed."""
        namespace_dict = self._namespaces.get(namespace, {})
        existed = key in namespace_dict
        namespace_dict.pop(key, None)
        if existed:
            self._persist(namespace)
        return existed

    def keys(self, namespace: str) -> List[str]:
        """All keys of a namespace."""
        return list(self._namespaces.get(namespace, {}))

    def scan(self, namespace: str) -> Iterator[Tuple[str, Any]]:
        """Iterate over ``(key, value)`` pairs of a namespace."""
        return iter(list(self._namespaces.get(namespace, {}).items()))

    def contains(self, namespace: str, key: str) -> bool:
        return key in self._namespaces.get(namespace, {})

    def clear(self, namespace: Optional[str] = None) -> None:
        """Drop one namespace (or everything)."""
        if namespace is None:
            namespaces = list(self._namespaces)
            self._namespaces.clear()
            for name in namespaces:
                self._persist(name)
        else:
            self._namespaces.pop(namespace, None)
            self._persist(namespace)

    # ------------------------------------------------------------------ #
    # accounting
    # ------------------------------------------------------------------ #

    def count(self, namespace: str) -> int:
        return len(self._namespaces.get(namespace, {}))

    def size_bytes(self, namespace: Optional[str] = None) -> int:
        """Approximate persisted size (length of the JSON rendering)."""
        if namespace is not None:
            return len(json.dumps(self._namespaces.get(namespace, {}), sort_keys=True))
        return sum(self.size_bytes(name) for name in self._namespaces)

    def namespaces(self) -> List[str]:
        return list(self._namespaces)

    # ------------------------------------------------------------------ #
    # persistence
    # ------------------------------------------------------------------ #

    def _namespace_path(self, namespace: str) -> Optional[Path]:
        if self._directory is None:
            return None
        return self._directory / f"{namespace}.json"

    def _persist(self, namespace: str) -> None:
        path = self._namespace_path(namespace)
        if path is None:
            return
        payload = self._namespaces.get(namespace, {})
        if not payload:
            if path.exists():
                path.unlink()
            return
        temporary = path.with_suffix(".json.tmp")
        temporary.write_text(json.dumps(payload, sort_keys=True), encoding="utf-8")
        temporary.replace(path)

    def _load_all(self) -> None:
        assert self._directory is not None
        for path in sorted(self._directory.glob("*.json")):
            namespace = path.stem
            try:
                self._namespaces[namespace] = json.loads(path.read_text(encoding="utf-8"))
            except json.JSONDecodeError:
                # A torn write of the namespace file is ignored; the WAL is
                # the recovery mechanism for in-flight instance updates.
                continue

    def flush(self) -> None:
        """Re-persist every namespace (no-op for purely in-memory stores)."""
        for namespace in self._namespaces:
            self._persist(namespace)
