"""The versioned schema repository.

Process templates (schemas) are released per process type and version;
the repository persists them through the key-value store and hands out
the referenced schema objects to the instance store — one shared object
per version, which is what makes the reference-based instance
representation redundancy free.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Tuple

from repro.core.evolution import EvolutionError, ProcessType, TypeChange
from repro.schema.graph import ProcessSchema
from repro.storage.kv import KeyValueStore

_NAMESPACE = "schemas"


class SchemaRepository:
    """Stores process types and their released schema versions."""

    def __init__(self, store: Optional[KeyValueStore] = None) -> None:
        self._store = store or KeyValueStore()
        self._types: Dict[str, ProcessType] = {}
        # registrations and releases are rare next to lookups, but they
        # race under a multi-threaded façade (two deploys, a deploy vs a
        # checkpoint snapshot) — one reentrant lock keeps them atomic
        self._lock = threading.RLock()
        self._load()

    # ------------------------------------------------------------------ #

    def register_type(self, schema: ProcessSchema) -> ProcessType:
        """Register a new process type with ``schema`` as its first version."""
        with self._lock:
            if schema.name in self._types:
                raise EvolutionError(f"process type {schema.name!r} is already registered")
            process_type = ProcessType(schema.name, initial_schema=schema)
            self._types[schema.name] = process_type
            self._persist(schema)
            return process_type

    def adopt_type(self, process_type: ProcessType) -> ProcessType:
        """Adopt an externally managed process type (all versions are persisted).

        Useful when a :class:`~repro.core.evolution.ProcessType` was built and
        evolved outside the repository (e.g. by a workload generator) and its
        instances should now be stored.
        """
        with self._lock:
            if process_type.name in self._types:
                raise EvolutionError(f"process type {process_type.name!r} is already registered")
            self._types[process_type.name] = process_type
            for version in process_type.versions:
                self._persist(process_type.schema_for(version))
            return process_type

    def release_version(self, type_name: str, type_change: TypeChange) -> ProcessSchema:
        """Release a new version of ``type_name`` by applying ``type_change``."""
        with self._lock:
            process_type = self.process_type(type_name)
            new_schema = process_type.release_new_version(type_change)
            self._persist(new_schema)
            return new_schema

    def withdraw_version(self, type_name: str, version: int) -> ProcessSchema:
        """Withdraw the latest version of ``type_name`` and unpersist it.

        Used by canary auto-rollback: the refused version is removed so a
        later evolve releases from the restored latest version again.
        """
        with self._lock:
            process_type = self.process_type(type_name)
            schema = process_type.withdraw_version(version)
            self._store.delete(_NAMESPACE, f"{type_name}:{version}")
            return schema

    def process_type(self, type_name: str) -> ProcessType:
        try:
            return self._types[type_name]
        except KeyError:
            raise EvolutionError(f"unknown process type {type_name!r}") from None

    def has_type(self, type_name: str) -> bool:
        return type_name in self._types

    def schema(self, type_name: str, version: int) -> ProcessSchema:
        """The released schema of ``type_name`` with the given version."""
        return self.process_type(type_name).schema_for(version)

    def latest_schema(self, type_name: str) -> ProcessSchema:
        return self.process_type(type_name).latest_schema

    def type_names(self) -> List[str]:
        with self._lock:
            return sorted(self._types)

    def versions_of(self, type_name: str) -> List[int]:
        return self.process_type(type_name).versions

    def resolve(self, type_name: str, version: int) -> ProcessSchema:
        """Schema resolver signature used by the instance store."""
        return self.schema(type_name, version)

    # ------------------------------------------------------------------ #
    # persistence
    # ------------------------------------------------------------------ #

    def _persist(self, schema: ProcessSchema) -> None:
        key = f"{schema.name}:{schema.version}"
        self._store.put(_NAMESPACE, key, schema.to_dict())

    def _load(self) -> None:
        records: Dict[str, List[Tuple[int, ProcessSchema]]] = {}
        for _, payload in self._store.scan(_NAMESPACE):
            schema = ProcessSchema.from_dict(payload)
            records.setdefault(schema.name, []).append((schema.version, schema))
        for type_name, versions in records.items():
            process_type = ProcessType(type_name)
            for _, schema in sorted(versions, key=lambda pair: pair[0]):
                process_type.add_version(schema)
            self._types[type_name] = process_type

    def storage_size_bytes(self) -> int:
        """Approximate persisted size of all schema versions."""
        return self._store.size_bytes(_NAMESPACE)

    def __len__(self) -> int:
        return len(self._types)
