"""Serialisation of process instances (independent of the representation).

The representation strategies (:mod:`repro.storage.representations`)
decide how the *schema* of an instance is persisted; everything else —
marking, history, data context, loop counters, status, bias change log —
is serialised here in one canonical format.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Mapping, Optional

from repro.core.changelog import ChangeLog
from repro.runtime.data_context import DataContext
from repro.runtime.history import ExecutionHistory
from repro.runtime.instance import ProcessInstance
from repro.runtime.markings import Marking
from repro.runtime.states import InstanceStatus
from repro.schema.graph import ProcessSchema

SchemaResolver = Callable[[str, int], ProcessSchema]


def instance_to_dict(instance: ProcessInstance) -> Dict[str, Any]:
    """Serialise the representation-independent part of an instance."""
    payload: Dict[str, Any] = {
        "instance_id": instance.instance_id,
        "process_type": instance.process_type,
        "schema_version": instance.schema_version,
        "status": instance.status.value,
        "marking": instance.marking.to_dict(),
        "history": instance.history.to_dict(),
        "data": instance.data.to_dict(),
        "loop_iterations": dict(instance.loop_iterations),
        "biased": instance.is_biased,
    }
    if isinstance(instance.bias, ChangeLog) and len(instance.bias) > 0:
        payload["bias"] = instance.bias.to_dict()
    return payload


def instance_from_dict(
    payload: Mapping[str, Any],
    schema_resolver: SchemaResolver,
    execution_schema: Optional[ProcessSchema] = None,
) -> ProcessInstance:
    """Reconstruct an instance from :func:`instance_to_dict` output.

    ``schema_resolver`` maps ``(process_type, version)`` to the referenced
    original schema; ``execution_schema`` is the materialised
    instance-specific schema for biased instances (produced by the
    representation strategy) and may be omitted for unbiased ones.
    """
    original = schema_resolver(payload["process_type"], payload["schema_version"])
    instance = ProcessInstance(instance_id=payload["instance_id"], schema=original)
    instance.status = InstanceStatus(payload.get("status", "running"))
    instance.marking = Marking.from_dict(payload.get("marking", {}))
    instance.history = ExecutionHistory.from_dict(payload.get("history", {}))
    instance.data = DataContext.from_dict(payload.get("data", {}))
    instance.loop_iterations = dict(payload.get("loop_iterations", {}))
    bias_payload = payload.get("bias")
    if bias_payload:
        bias = ChangeLog.from_dict(bias_payload)
        if execution_schema is None:
            execution_schema = bias.apply_to(original, check=False)
            execution_schema.schema_id = f"{original.schema_id}+{instance.instance_id}"
        instance.set_bias(bias, execution_schema)
    return instance
