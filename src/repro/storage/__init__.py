"""Storage layer of the ADEPT2 reproduction.

Implements the paper's Fig. 2 storage architecture: a versioned schema
repository, and an instance store in which unchanged instances are kept
redundancy-free (schema reference + instance data) while biased instances
carry a minimal substitution block that is overlaid on the original
schema on access.  Baseline representations (full copy per instance,
materialise-on-the-fly) are provided for the storage benchmark, plus a
write-ahead log for crash recovery and simple secondary indexes.
"""

from repro.storage.kv import KeyValueStore
from repro.storage.wal import WriteAheadLog
from repro.storage.serialization import instance_to_dict, instance_from_dict
from repro.storage.repository import SchemaRepository
from repro.storage.representations import (
    FullCopyRepresentation,
    HybridSubstitutionRepresentation,
    MaterializeOnAccessRepresentation,
    RepresentationStrategy,
)
from repro.storage.instance_store import InstanceStore, StoredInstance
from repro.storage.indexes import InstanceIndex

__all__ = [
    "KeyValueStore",
    "WriteAheadLog",
    "instance_to_dict",
    "instance_from_dict",
    "SchemaRepository",
    "RepresentationStrategy",
    "FullCopyRepresentation",
    "MaterializeOnAccessRepresentation",
    "HybridSubstitutionRepresentation",
    "InstanceStore",
    "StoredInstance",
    "InstanceIndex",
]
