"""Process instances.

A :class:`ProcessInstance` couples a reference to its (type) schema with
all instance-specific information: the marking, the execution history,
the data values, loop iteration counters and — for ad-hoc modified
("biased") instances — the change log and the materialised
instance-specific execution schema.

Unbiased instances never copy their schema; they execute directly on the
referenced type schema, which is exactly the redundancy-free storage
representation of the paper's Fig. 2.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Optional

from repro.runtime.data_context import DataContext
from repro.runtime.history import ExecutionHistory
from repro.runtime.markings import Marking
from repro.runtime.states import InstanceStatus, NodeState
from repro.schema.graph import ProcessSchema


class ProcessInstance:
    """One running (or finished) case of a process type.

    Args:
        instance_id: Unique identifier of the instance.
        schema: The process type schema the instance was created on.
        initial_data: Optional initial values for data elements.
    """

    def __init__(
        self,
        instance_id: str,
        schema: ProcessSchema,
        initial_data: Optional[Mapping[str, Any]] = None,
    ) -> None:
        if not instance_id:
            raise ValueError("instance_id must be non-empty")
        self.instance_id = instance_id
        self.original_schema = schema
        self.process_type = schema.name
        self.schema_version = schema.version
        self.marking = Marking.initial(schema)
        self.history = ExecutionHistory()
        self.data = DataContext(schema)
        self.status = InstanceStatus.CREATED
        self.loop_iterations: Dict[str, int] = {}
        self.bias: Optional[Any] = None
        self._execution_schema: Optional[ProcessSchema] = None
        if initial_data:
            for element, value in initial_data.items():
                self.data.write(element, value, writer="<initial>")

    # ------------------------------------------------------------------ #
    # schema access
    # ------------------------------------------------------------------ #

    @property
    def execution_schema(self) -> ProcessSchema:
        """The schema the instance actually executes on.

        Unbiased instances run on the referenced type schema; biased
        instances run on their materialised instance-specific schema.
        """
        if self._execution_schema is not None:
            return self._execution_schema
        return self.original_schema

    @property
    def is_biased(self) -> bool:
        """True when ad-hoc changes were applied to this instance."""
        return self.bias is not None and len(self.bias) > 0

    def set_bias(self, bias: Any, execution_schema: ProcessSchema) -> None:
        """Attach an ad-hoc change log and its materialised schema."""
        self.bias = bias
        self._execution_schema = execution_schema

    def clear_bias(self) -> None:
        """Drop the bias (e.g. after it was absorbed into a new type schema)."""
        self.bias = None
        self._execution_schema = None

    def rebind_schema(self, schema: ProcessSchema, execution_schema: Optional[ProcessSchema] = None) -> None:
        """Re-link the instance to a (new) type schema after migration."""
        self.original_schema = schema
        self.schema_version = schema.version
        self.process_type = schema.name
        self._execution_schema = execution_schema

    def clone(self, instance_id: Optional[str] = None) -> "ProcessInstance":
        """A deep, independent copy of this instance (same schema references).

        Used by what-if analyses such as planning a partial rollback before
        committing it to the real instance.
        """
        copy = ProcessInstance(instance_id or f"{self.instance_id}__clone", self.original_schema)
        copy.status = self.status
        copy.marking = self.marking.copy()
        copy.history = self.history.copy()
        copy.data = self.data.copy()
        copy.loop_iterations = dict(self.loop_iterations)
        copy.bias = self.bias
        copy._execution_schema = self._execution_schema
        copy.schema_version = self.schema_version
        copy.process_type = self.process_type
        return copy

    # ------------------------------------------------------------------ #
    # convenience state queries
    # ------------------------------------------------------------------ #

    def state_fingerprint(self) -> str:
        """A stable digest of the complete observable instance state.

        Covers status, schema version, marking, (reduced and full) history,
        data context, loop counters and the recorded bias — two instances
        with the same fingerprint are indistinguishable to every component.
        The recovery tests compare pre-crash and recovered populations with
        this; it is intentionally derived from the canonical serialisation
        so that "equal fingerprint" and "equal persisted record" coincide.
        """
        import hashlib
        import json

        from repro.storage.serialization import instance_to_dict

        payload = json.dumps(instance_to_dict(self), sort_keys=True)
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def node_state(self, node_id: str) -> NodeState:
        """Current state of a node in the instance marking."""
        return self.marking.node_state(node_id)

    def activated_activities(self) -> list:
        """Activity node ids the user could start right now."""
        schema = self.execution_schema
        return [
            node_id
            for node_id in self.marking.activated_nodes()
            if schema.has_node(node_id) and schema.node(node_id).is_activity
        ]

    def completed_activities(self) -> list:
        """Activity ids completed so far (reduced history order)."""
        return self.history.completed_activities(reduced=True)

    def iteration_of(self, loop_start_id: str) -> int:
        """Current iteration counter of the loop opened by ``loop_start_id``."""
        return self.loop_iterations.get(loop_start_id, 0)

    def progress(self) -> float:
        """Fraction of activities completed or skipped (rough progress measure)."""
        schema = self.execution_schema
        activities = schema.activity_ids()
        if not activities:
            return 1.0
        finished = sum(
            1 for a in activities if self.marking.node_state(a).is_finished
        )
        return finished / len(activities)

    def summary(self) -> str:
        """One-line human readable status summary."""
        return (
            f"{self.instance_id}: {self.process_type} v{self.schema_version} "
            f"[{self.status.value}] progress={self.progress():.0%} "
            f"biased={'yes' if self.is_biased else 'no'}"
        )

    def __repr__(self) -> str:
        return (
            f"ProcessInstance({self.instance_id!r}, type={self.process_type!r}, "
            f"version={self.schema_version}, status={self.status.value})"
        )
