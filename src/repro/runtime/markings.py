"""Instance markings: the per-instance state of all nodes and edges.

A marking assigns a :class:`~repro.runtime.states.NodeState` to every node
and an :class:`~repro.runtime.states.EdgeState` to every control and sync
edge of the instance's execution schema.  Markings are the
instance-specific data the redundancy-free storage representation keeps
next to the schema reference (paper Fig. 2), and the object on which the
per-operation compliance conditions are evaluated (paper Fig. 1).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, List, Mapping, Optional, Set, Tuple

from repro.runtime.states import EdgeState, NodeState
from repro.schema.edges import EdgeType
from repro.schema.graph import ProcessSchema
from repro.schema.index import indexing_enabled

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.runtime.kernel import MarkingLayout

EdgeKey = Tuple[str, str, str]

# dense edge-state codes, mirrored from repro.runtime.kernel.EDGE_CODE
# (inlined here to keep the mutator hot path free of imports)
_EDGE_CODE = {
    EdgeState.NOT_SIGNALED: 0,
    EdgeState.TRUE_SIGNALED: 1,
    EdgeState.FALSE_SIGNALED: 2,
}


class DenseMarking:
    """Dense, positionally-indexed projection of a :class:`Marking`.

    Built against a :class:`~repro.runtime.kernel.MarkingLayout` (one per
    schema generation) and kept coherent by the marking's mutators:

    * ``edge_values[p]`` — the dense state code (0 NOT / 1 TRUE / 2 FALSE)
      of the edge at layout position ``p``;
    * ``untouched[p]`` — 1 while the node at position ``p`` is
      NOT_ACTIVATED, i.e. still eligible for an entry decision;
    * ``at_fixpoint`` — True when a propagation pass has run to quiescence
      since the last mutation; lets ``complete_activity`` seed the next
      pass with only the nodes its signals touched;
    * ``stale`` — set when the marking mutates structurally (node/edge
      added or removed), which invalidates the positional mapping; the
      next ``dense_view`` call rebuilds against the current layout.

    The positional order is exactly ``SchemaIndex.node_ids`` /
    ``non_loop_edge_keys()`` — the same layout the migration fingerprints
    project, so a dense view and a fingerprint of the same generation
    always agree on coordinates.
    """

    __slots__ = (
        "layout",
        "edge_values",
        "untouched",
        "activated",
        "aligned",
        "at_fixpoint",
        "stale",
    )

    def __init__(self, layout: "MarkingLayout", marking: "Marking") -> None:
        self.layout = layout
        edge_values = bytearray(len(layout.edge_keys))
        edge_states = marking.edge_states
        for key, state in edge_states.items():
            position = layout.edge_pos.get(key)
            if position is not None:
                edge_values[position] = _EDGE_CODE[state]
        untouched = bytearray(len(layout.node_ids))
        activated = bytearray(len(layout.node_ids))
        node_states = marking.node_states
        not_activated = NodeState.NOT_ACTIVATED
        is_activated = NodeState.ACTIVATED
        for position, node_id in enumerate(layout.node_ids):
            state = node_states.get(node_id, not_activated)
            if state is not_activated:
                untouched[position] = 1
            elif state is is_activated:
                activated[position] = 1
        self.edge_values = edge_values
        self.untouched = untouched
        self.activated = activated
        # True when the marking holds exactly the layout's nodes in the
        # layout's order — then a positional scan visits nodes in the same
        # order as a marking-dict scan, and dense answers (e.g. "first
        # activated activity") replicate the dict-based ones exactly
        self.aligned = list(node_states) == list(layout.node_ids)
        self.at_fixpoint = False
        self.stale = False

    # mutator mirror hooks (called from Marking's setters) ------------- #

    def on_node(self, node_id: str, state: NodeState) -> None:
        position = self.layout.node_pos.get(node_id)
        if position is None:
            self.stale = True
            return
        if state is NodeState.NOT_ACTIVATED:
            # a reset re-arms the node for entry decisions (loop back,
            # migration, ad-hoc change): the fixpoint no longer holds
            self.untouched[position] = 1
            self.activated[position] = 0
            self.at_fixpoint = False
        else:
            self.untouched[position] = 0
            self.activated[position] = 1 if state is NodeState.ACTIVATED else 0

    def on_edge(self, key: EdgeKey, state: EdgeState) -> None:
        position = self.layout.edge_pos.get(key)
        if position is None:
            self.stale = True
            return
        self.edge_values[position] = _EDGE_CODE[state]
        self.at_fixpoint = False


class Marking:
    """State assignment for all nodes and (control/sync) edges of a schema."""

    def __init__(
        self,
        node_states: Optional[Mapping[str, NodeState]] = None,
        edge_states: Optional[Mapping[EdgeKey, EdgeState]] = None,
    ) -> None:
        self._node_states: Dict[str, NodeState] = dict(node_states or {})
        self._edge_states: Dict[EdgeKey, EdgeState] = dict(edge_states or {})
        # dense projection, built on demand by dense_view() and kept
        # coherent by the mutators below
        self._dense: Optional[DenseMarking] = None

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #

    @classmethod
    def initial(cls, schema: ProcessSchema) -> "Marking":
        """The marking of a freshly created instance: everything untouched."""
        if indexing_enabled():
            index = schema.index
            return cls(
                dict.fromkeys(index.node_ids, NodeState.NOT_ACTIVATED),
                dict.fromkeys(index.non_loop_edge_keys(), EdgeState.NOT_SIGNALED),
            )
        node_states = {node_id: NodeState.NOT_ACTIVATED for node_id in schema.node_ids()}
        edge_states = {
            edge.key: EdgeState.NOT_SIGNALED for edge in schema.edges if not edge.is_loop
        }
        return cls(node_states, edge_states)

    def copy(self) -> "Marking":
        """An independent copy of this marking."""
        return Marking(dict(self._node_states), dict(self._edge_states))

    # ------------------------------------------------------------------ #
    # node state accessors
    # ------------------------------------------------------------------ #

    @property
    def node_states(self) -> Dict[str, NodeState]:
        return self._node_states

    @property
    def edge_states(self) -> Dict[EdgeKey, EdgeState]:
        return self._edge_states

    def node_state(self, node_id: str) -> NodeState:
        """State of ``node_id`` (untouched nodes default to NOT_ACTIVATED)."""
        return self._node_states.get(node_id, NodeState.NOT_ACTIVATED)

    def set_node_state(self, node_id: str, state: NodeState) -> None:
        self._node_states[node_id] = state
        if self._dense is not None:
            self._dense.on_node(node_id, state)

    def remove_node(self, node_id: str) -> None:
        """Forget the state of a node (used when a change deletes it)."""
        self._node_states.pop(node_id, None)
        self._edge_states = {
            key: state
            for key, state in self._edge_states.items()
            if key[0] != node_id and key[1] != node_id
        }
        self._dense = None  # positional mapping no longer valid

    def nodes_in_state(self, *states: NodeState) -> List[str]:
        """All node ids currently in one of ``states``."""
        wanted = set(states)
        return [node_id for node_id, state in self._node_states.items() if state in wanted]

    def activated_nodes(self) -> List[str]:
        return self.nodes_in_state(NodeState.ACTIVATED)

    def running_nodes(self) -> List[str]:
        return self.nodes_in_state(NodeState.RUNNING, NodeState.SUSPENDED)

    def completed_nodes(self) -> List[str]:
        return self.nodes_in_state(NodeState.COMPLETED)

    def started_nodes(self) -> List[str]:
        """Nodes whose execution has begun (running, suspended, completed, failed)."""
        return [
            node_id for node_id, state in self._node_states.items() if state.is_started
        ]

    # ------------------------------------------------------------------ #
    # edge state accessors
    # ------------------------------------------------------------------ #

    def edge_state(self, source: str, target: str, edge_type: EdgeType = EdgeType.CONTROL) -> EdgeState:
        """State of the edge (untouched edges default to NOT_SIGNALED)."""
        return self._edge_states.get((source, target, edge_type.value), EdgeState.NOT_SIGNALED)

    def edge_state_key(self, key: EdgeKey) -> EdgeState:
        """State of the edge by its precomputed key (engine hot path).

        Avoids rebuilding the ``(source, target, type)`` tuple per lookup;
        the engine feeds it the ``Edge.key`` tuples held by the compiled
        :class:`~repro.schema.index.SchemaIndex`.
        """
        return self._edge_states.get(key, EdgeState.NOT_SIGNALED)

    def set_edge_state_key(self, key: EdgeKey, state: EdgeState) -> None:
        """Set the state of the edge by its precomputed key (engine hot path)."""
        self._edge_states[key] = state
        if self._dense is not None:
            self._dense.on_edge(key, state)

    def set_edge_state(
        self, source: str, target: str, state: EdgeState, edge_type: EdgeType = EdgeType.CONTROL
    ) -> None:
        key = (source, target, edge_type.value)
        self._edge_states[key] = state
        if self._dense is not None:
            self._dense.on_edge(key, state)

    def ensure_edge(self, source: str, target: str, edge_type: EdgeType = EdgeType.CONTROL) -> None:
        """Register a (new) edge with the default NOT_SIGNALED state."""
        key = (source, target, edge_type.value)
        if key not in self._edge_states:
            self._edge_states[key] = EdgeState.NOT_SIGNALED
            self._dense = None  # a structurally new edge invalidates positions

    def ensure_node(self, node_id: str) -> None:
        """Register a (new) node with the default NOT_ACTIVATED state."""
        if node_id not in self._node_states:
            self._node_states[node_id] = NodeState.NOT_ACTIVATED
            self._dense = None  # a structurally new node invalidates positions

    # ------------------------------------------------------------------ #
    # dense projection (compiled stepping kernel)
    # ------------------------------------------------------------------ #

    def dense_view(self, layout: "MarkingLayout") -> DenseMarking:
        """The dense projection of this marking against ``layout``.

        The view is cached and mirrored through every mutator; it is
        rebuilt when the layout changes (schema evolved to a new
        generation) or after a structural marking mutation
        (``ensure_node`` / ``ensure_edge`` / ``remove_node``) made the
        cached positions unreliable.
        """
        view = self._dense
        if view is None or view.layout is not layout or view.stale:
            view = DenseMarking(layout, self)
            self._dense = view
        return view

    # ------------------------------------------------------------------ #
    # comparison / serialization
    # ------------------------------------------------------------------ #

    def differences(self, other: "Marking") -> List[str]:
        """Human readable differences between two markings (for tests)."""
        problems: List[str] = []
        node_ids = set(self._node_states) | set(other._node_states)
        for node_id in sorted(node_ids):
            mine = self.node_state(node_id)
            theirs = other.node_state(node_id)
            if mine is not theirs:
                problems.append(f"node {node_id}: {mine.value} != {theirs.value}")
        edge_keys = set(self._edge_states) | set(other._edge_states)
        for key in sorted(edge_keys):
            mine_edge = self._edge_states.get(key, EdgeState.NOT_SIGNALED)
            theirs_edge = other._edge_states.get(key, EdgeState.NOT_SIGNALED)
            if mine_edge is not theirs_edge:
                problems.append(f"edge {key}: {mine_edge.value} != {theirs_edge.value}")
        return problems

    def equivalent_to(self, other: "Marking") -> bool:
        """True when both markings assign the same states everywhere."""
        return not self.differences(other)

    def to_dict(self) -> dict:
        """Serialize the marking to a JSON-compatible dictionary."""
        return {
            "node_states": {node_id: state.value for node_id, state in self._node_states.items()},
            "edge_states": [
                {"source": key[0], "target": key[1], "edge_type": key[2], "state": state.value}
                for key, state in self._edge_states.items()
            ],
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "Marking":
        """Reconstruct a marking from :meth:`to_dict` output."""
        node_states = {
            node_id: NodeState(value) for node_id, value in payload.get("node_states", {}).items()
        }
        edge_states = {
            (entry["source"], entry["target"], entry["edge_type"]): EdgeState(entry["state"])
            for entry in payload.get("edge_states", [])
        }
        return cls(node_states, edge_states)

    def __repr__(self) -> str:
        active = len(self.nodes_in_state(NodeState.ACTIVATED, NodeState.RUNNING))
        done = len(self.completed_nodes())
        return f"Marking(nodes={len(self._node_states)}, active={active}, completed={done})"
