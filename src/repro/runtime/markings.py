"""Instance markings: the per-instance state of all nodes and edges.

A marking assigns a :class:`~repro.runtime.states.NodeState` to every node
and an :class:`~repro.runtime.states.EdgeState` to every control and sync
edge of the instance's execution schema.  Markings are the
instance-specific data the redundancy-free storage representation keeps
next to the schema reference (paper Fig. 2), and the object on which the
per-operation compliance conditions are evaluated (paper Fig. 1).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Set, Tuple

from repro.runtime.states import EdgeState, NodeState
from repro.schema.edges import EdgeType
from repro.schema.graph import ProcessSchema
from repro.schema.index import indexing_enabled

EdgeKey = Tuple[str, str, str]


class Marking:
    """State assignment for all nodes and (control/sync) edges of a schema."""

    def __init__(
        self,
        node_states: Optional[Mapping[str, NodeState]] = None,
        edge_states: Optional[Mapping[EdgeKey, EdgeState]] = None,
    ) -> None:
        self._node_states: Dict[str, NodeState] = dict(node_states or {})
        self._edge_states: Dict[EdgeKey, EdgeState] = dict(edge_states or {})

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #

    @classmethod
    def initial(cls, schema: ProcessSchema) -> "Marking":
        """The marking of a freshly created instance: everything untouched."""
        if indexing_enabled():
            index = schema.index
            return cls(
                dict.fromkeys(index.node_ids, NodeState.NOT_ACTIVATED),
                dict.fromkeys(index.non_loop_edge_keys(), EdgeState.NOT_SIGNALED),
            )
        node_states = {node_id: NodeState.NOT_ACTIVATED for node_id in schema.node_ids()}
        edge_states = {
            edge.key: EdgeState.NOT_SIGNALED for edge in schema.edges if not edge.is_loop
        }
        return cls(node_states, edge_states)

    def copy(self) -> "Marking":
        """An independent copy of this marking."""
        return Marking(dict(self._node_states), dict(self._edge_states))

    # ------------------------------------------------------------------ #
    # node state accessors
    # ------------------------------------------------------------------ #

    @property
    def node_states(self) -> Dict[str, NodeState]:
        return self._node_states

    @property
    def edge_states(self) -> Dict[EdgeKey, EdgeState]:
        return self._edge_states

    def node_state(self, node_id: str) -> NodeState:
        """State of ``node_id`` (untouched nodes default to NOT_ACTIVATED)."""
        return self._node_states.get(node_id, NodeState.NOT_ACTIVATED)

    def set_node_state(self, node_id: str, state: NodeState) -> None:
        self._node_states[node_id] = state

    def remove_node(self, node_id: str) -> None:
        """Forget the state of a node (used when a change deletes it)."""
        self._node_states.pop(node_id, None)
        self._edge_states = {
            key: state
            for key, state in self._edge_states.items()
            if key[0] != node_id and key[1] != node_id
        }

    def nodes_in_state(self, *states: NodeState) -> List[str]:
        """All node ids currently in one of ``states``."""
        wanted = set(states)
        return [node_id for node_id, state in self._node_states.items() if state in wanted]

    def activated_nodes(self) -> List[str]:
        return self.nodes_in_state(NodeState.ACTIVATED)

    def running_nodes(self) -> List[str]:
        return self.nodes_in_state(NodeState.RUNNING, NodeState.SUSPENDED)

    def completed_nodes(self) -> List[str]:
        return self.nodes_in_state(NodeState.COMPLETED)

    def started_nodes(self) -> List[str]:
        """Nodes whose execution has begun (running, suspended, completed, failed)."""
        return [
            node_id for node_id, state in self._node_states.items() if state.is_started
        ]

    # ------------------------------------------------------------------ #
    # edge state accessors
    # ------------------------------------------------------------------ #

    def edge_state(self, source: str, target: str, edge_type: EdgeType = EdgeType.CONTROL) -> EdgeState:
        """State of the edge (untouched edges default to NOT_SIGNALED)."""
        return self._edge_states.get((source, target, edge_type.value), EdgeState.NOT_SIGNALED)

    def edge_state_key(self, key: EdgeKey) -> EdgeState:
        """State of the edge by its precomputed key (engine hot path).

        Avoids rebuilding the ``(source, target, type)`` tuple per lookup;
        the engine feeds it the ``Edge.key`` tuples held by the compiled
        :class:`~repro.schema.index.SchemaIndex`.
        """
        return self._edge_states.get(key, EdgeState.NOT_SIGNALED)

    def set_edge_state_key(self, key: EdgeKey, state: EdgeState) -> None:
        """Set the state of the edge by its precomputed key (engine hot path)."""
        self._edge_states[key] = state

    def set_edge_state(
        self, source: str, target: str, state: EdgeState, edge_type: EdgeType = EdgeType.CONTROL
    ) -> None:
        self._edge_states[(source, target, edge_type.value)] = state

    def ensure_edge(self, source: str, target: str, edge_type: EdgeType = EdgeType.CONTROL) -> None:
        """Register a (new) edge with the default NOT_SIGNALED state."""
        self._edge_states.setdefault((source, target, edge_type.value), EdgeState.NOT_SIGNALED)

    def ensure_node(self, node_id: str) -> None:
        """Register a (new) node with the default NOT_ACTIVATED state."""
        self._node_states.setdefault(node_id, NodeState.NOT_ACTIVATED)

    # ------------------------------------------------------------------ #
    # comparison / serialization
    # ------------------------------------------------------------------ #

    def differences(self, other: "Marking") -> List[str]:
        """Human readable differences between two markings (for tests)."""
        problems: List[str] = []
        node_ids = set(self._node_states) | set(other._node_states)
        for node_id in sorted(node_ids):
            mine = self.node_state(node_id)
            theirs = other.node_state(node_id)
            if mine is not theirs:
                problems.append(f"node {node_id}: {mine.value} != {theirs.value}")
        edge_keys = set(self._edge_states) | set(other._edge_states)
        for key in sorted(edge_keys):
            mine_edge = self._edge_states.get(key, EdgeState.NOT_SIGNALED)
            theirs_edge = other._edge_states.get(key, EdgeState.NOT_SIGNALED)
            if mine_edge is not theirs_edge:
                problems.append(f"edge {key}: {mine_edge.value} != {theirs_edge.value}")
        return problems

    def equivalent_to(self, other: "Marking") -> bool:
        """True when both markings assign the same states everywhere."""
        return not self.differences(other)

    def to_dict(self) -> dict:
        """Serialize the marking to a JSON-compatible dictionary."""
        return {
            "node_states": {node_id: state.value for node_id, state in self._node_states.items()},
            "edge_states": [
                {"source": key[0], "target": key[1], "edge_type": key[2], "state": state.value}
                for key, state in self._edge_states.items()
            ],
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "Marking":
        """Reconstruct a marking from :meth:`to_dict` output."""
        node_states = {
            node_id: NodeState(value) for node_id, value in payload.get("node_states", {}).items()
        }
        edge_states = {
            (entry["source"], entry["target"], entry["edge_type"]): EdgeState(entry["state"])
            for entry in payload.get("edge_states", [])
        }
        return cls(node_states, edge_states)

    def __repr__(self) -> str:
        active = len(self.nodes_in_state(NodeState.ACTIVATED, NodeState.RUNNING))
        done = len(self.completed_nodes())
        return f"Marking(nodes={len(self._node_states)}, active={active}, completed={done})"
