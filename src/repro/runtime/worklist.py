"""Worklists: offering activated activities to authorised users.

Activated activities are turned into work items and offered to the users
whose role matches the activity's staff assignment (resolved through the
organisational model, :mod:`repro.org`).  A user claims an item, performs
the work and completes it through the engine.

**Thread safety.**  All item state lives behind one reentrant manager
lock; :meth:`WorklistManager.claim` is an *atomic reservation* — under
contention exactly one claimer flips an item from OFFERED to CLAIMED,
every other claimer gets a clean :class:`EngineError`.  The engine call
itself runs outside the manager lock, wrapped in the optional
:attr:`execution_guard` (the façade installs its per-type/per-instance
locking there), so holding a worklist view never blocks case execution.
A failed engine call reverts the reservation.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Callable, Dict, Iterator, List, Mapping, Optional, Set, Tuple

from repro.runtime.engine import EngineError, ProcessEngine
from repro.runtime.instance import ProcessInstance


class WorkItemState(str, Enum):
    """Lifecycle of a work item."""

    OFFERED = "offered"
    CLAIMED = "claimed"
    COMPLETED = "completed"
    WITHDRAWN = "withdrawn"


@dataclass
class WorkItem:
    """One offered unit of work (an activated activity of an instance)."""

    item_id: str
    instance_id: str
    activity_id: str
    role: Optional[str]
    state: WorkItemState = WorkItemState.OFFERED
    claimed_by: Optional[str] = None

    def __str__(self) -> str:
        who = f" by {self.claimed_by}" if self.claimed_by else ""
        return f"[{self.state.value}] {self.instance_id}/{self.activity_id} (role={self.role}){who}"


class WorklistManager:
    """Maintains work items for a set of instances driven by one engine."""

    def __init__(self, engine: ProcessEngine, org_model: Optional[Any] = None) -> None:
        self.engine = engine
        self.org_model = org_model
        self._items: Dict[str, WorkItem] = {}
        self._instances: Dict[str, ProcessInstance] = {}
        self._counter = 0
        #: Open (offered or claimed) items indexed by (instance, activity) —
        #: kept incrementally so refresh and registration stay linear in the
        #: number of *activations*, not in the total item history.
        self._open_pairs: Dict[tuple, WorkItem] = {}
        #: Open pairs per instance — per-case synchronisation (the worker
        #: pool's path) must not scan the global open set.
        self._open_by_instance: Dict[str, Set[tuple]] = {}
        #: Optional hook mapping an instance id to a live instance.  The
        #: façade's lazy-hydration cache sets this so claiming or completing
        #: a work item of an evicted case transparently re-hydrates it from
        #: the instance store.
        self.instance_resolver: Optional[Any] = None
        #: Optional context-manager factory ``guard(instance_id) -> instance``
        #: wrapping every engine call performed through the worklist.  The
        #: façade installs its execution locking (type read lock + instance
        #: stripe) here; standalone managers run unguarded.
        self.execution_guard: Optional[Callable[[str], Any]] = None
        #: Optional striped lock table; when set, refresh holds each
        #: instance's stripe while reading its activations so a case that
        #: is mid-step is never observed with a half-propagated marking.
        self.lock_table: Optional[Any] = None
        #: Process types currently quiesced by an evolve.  refresh leaves
        #: their instances (and their open items) untouched — the marking
        #: of a mid-migration case must not be read, and the evolve runs
        #: one global refresh right after releasing the quiesce.
        self.quiescing_types: set = set()
        # guards _items / _open_pairs / _open_by_instance / _counter;
        # reentrant because refresh re-enters _offer_items_for
        self._lock = threading.RLock()
        # innermost micro-lock for the instance registry only — taken by
        # register/unregister while callers may hold instance stripes, so
        # it must never be the big manager lock (lock-order inversion)
        self._registry_lock = threading.Lock()
        # items whose completion is currently executing (double-complete guard)
        self._completing: Set[str] = set()

    # ------------------------------------------------------------------ #

    def register_instance(self, instance: ProcessInstance, refresh: bool = True) -> None:
        """Track an instance and create work items for its activated activities.

        Registration offers items for *this* instance only (a global
        refresh per registration would make bulk population starts
        quadratic).  ``refresh=False`` defers even that to the next
        :meth:`refresh` — worklist views refresh on read, so bulk
        hydration uses it to stay linear.
        """
        with self._registry_lock:
            self._instances[instance.instance_id] = instance
        if refresh:
            with self._lock:
                with self._reading(instance.instance_id):
                    self._offer_items_for(instance)

    def unregister_instance(self, instance_id: str) -> None:
        """Stop tracking an instance (eviction from the live cache).

        Its open work items stay offered — the case still exists in the
        instance store; claiming one re-hydrates it through
        :attr:`instance_resolver`.
        """
        with self._registry_lock:
            self._instances.pop(instance_id, None)

    def discard_instance(self, instance_id: str) -> None:
        """Stop tracking an instance *and* withdraw its open work items.

        Used when the case ceases to exist (deletion) — unlike eviction,
        nothing could ever re-hydrate it, so offered items must not
        linger.
        """
        self.unregister_instance(instance_id)
        with self._lock:
            for pair in list(self._open_by_instance.get(instance_id, ())):
                self._drop_open_pair(pair).state = WorkItemState.WITHDRAWN

    def _drop_open_pair(self, pair: tuple) -> WorkItem:
        """Remove one pair from the open indexes (manager lock held)."""
        item = self._open_pairs.pop(pair)
        pairs = self._open_by_instance.get(pair[0])
        if pairs is not None:
            pairs.discard(pair)
            if not pairs:
                del self._open_by_instance[pair[0]]
        return item

    def _live_instance(self, instance_id: str) -> ProcessInstance:
        with self._registry_lock:
            instance = self._instances.get(instance_id)
        if instance is not None:
            return instance
        if self.instance_resolver is not None:
            # hydrates and re-registers through the façade
            return self.instance_resolver(instance_id)
        raise EngineError(f"instance {instance_id!r} is not registered with the worklist manager")

    @contextmanager
    def _execution(self, instance_id: str) -> Iterator[ProcessInstance]:
        """The locked execution scope for one engine call."""
        if self.execution_guard is not None:
            with self.execution_guard(instance_id) as instance:
                yield instance
        else:
            yield self._live_instance(instance_id)

    @contextmanager
    def _reading(self, instance_id: str) -> Iterator[None]:
        """Hold the instance's stripe (when a lock table is installed)."""
        if self.lock_table is not None:
            with self.lock_table.holding(instance_id):
                yield
        else:
            yield

    def _offer_items_for(self, instance: ProcessInstance) -> set:
        """Create items for an instance's activations; returns its active pairs.

        Caller holds the manager lock.
        """
        schema = instance.execution_schema
        pairs = set()
        for activity_id in instance.activated_activities():
            pair = (instance.instance_id, activity_id)
            pairs.add(pair)
            if pair not in self._open_pairs:
                self._counter += 1
                role = schema.node(activity_id).staff_assignment
                item = WorkItem(
                    item_id=f"wi-{self._counter}",
                    instance_id=instance.instance_id,
                    activity_id=activity_id,
                    role=role,
                )
                self._items[item.item_id] = item
                self._open_pairs[pair] = item
                self._open_by_instance.setdefault(instance.instance_id, set()).add(pair)
        return pairs

    def begin_quiesce(self, type_id: str) -> None:
        """Exclude one type's instances from refresh (evolve in progress)."""
        with self._lock:
            self.quiescing_types.add(type_id)

    def end_quiesce(self, type_id: str) -> None:
        with self._lock:
            self.quiescing_types.discard(type_id)

    def refresh(self) -> None:
        """Synchronise work items with the current activations of all instances.

        Instances of a type currently quiesced by an evolve are skipped —
        their markings are mid-migration; the evolve triggers a global
        refresh once the quiesce lifts.
        """
        with self._registry_lock:
            instances = list(self._instances.values())
        with self._lock:
            quiescing = set(self.quiescing_types)
            active_pairs = set()
            tracked = set()
            for instance in instances:
                if instance.process_type in quiescing:
                    continue  # not tracked: its pairs are left untouched below
                tracked.add(instance.instance_id)
                with self._reading(instance.instance_id):
                    active_pairs |= self._offer_items_for(instance)
            # withdraw OFFERED items whose activity is no longer activated
            # (e.g. the activity was deleted by an ad-hoc change or
            # skipped).  CLAIMED items are exempt — the activity is
            # RUNNING, its completion (or the completing thread's revert)
            # owns the pair.  Items of unregistered (evicted) instances
            # are left offered — the case still exists in the store.
            for pair, item in list(self._open_pairs.items()):
                if (
                    item.state is WorkItemState.OFFERED
                    and pair[0] in tracked
                    and pair not in active_pairs
                ):
                    self._drop_open_pair(pair).state = WorkItemState.WITHDRAWN

    def sync_instance(self, instance: ProcessInstance) -> None:
        """Synchronise the items of one case only (O(its activations)).

        The worker pool calls this after every completion instead of
        :meth:`refresh`, which is linear in the population.  Like
        refresh, it leaves quiesced types alone — the completion ran
        before the evolve took the write lock, but this sync runs after
        the execution guard was released, so the marking may already be
        mid-migration; the evolve's closing refresh resynchronises.
        """
        with self._lock:
            if instance.process_type in self.quiescing_types:
                return
            with self._reading(instance.instance_id):
                active = self._offer_items_for(instance)
            for pair in list(self._open_by_instance.get(instance.instance_id, ())):
                item = self._open_pairs[pair]
                if item.state is WorkItemState.OFFERED and pair not in active:
                    self._drop_open_pair(pair).state = WorkItemState.WITHDRAWN

    def swap_instance(self, instance: ProcessInstance) -> None:
        """Replace the tracked live object of one case (canary revert).

        A rollout rollback restores a case from its pre-adoption snapshot
        as a *new* object; the manager must track that object from now
        on.  The revert runs while the type is quiesced, so re-deriving
        the case's items is left to the evolve's closing refresh.
        """
        with self._registry_lock:
            if instance.instance_id in self._instances:
                self._instances[instance.instance_id] = instance

    def _has_open_item(self, instance_id: str, activity_id: str) -> bool:
        with self._lock:
            return (instance_id, activity_id) in self._open_pairs

    # ------------------------------------------------------------------ #

    def worklist_for(self, user: str) -> List[WorkItem]:
        """Open work items the given user is authorised to perform."""
        with self._lock:
            items = []
            for item in self._items.values():
                if item.state is not WorkItemState.OFFERED:
                    continue
                if self._authorised(user, item.role):
                    items.append(item)
            return items

    def offered_items(self) -> List[WorkItem]:
        """All currently offered items (the worker pool's seed set)."""
        with self._lock:
            return [
                item
                for item in self._open_pairs.values()
                if item.state is WorkItemState.OFFERED
            ]

    def offered_items_for_instance(self, instance_id: str) -> List[WorkItem]:
        """Currently offered items of one case."""
        with self._lock:
            return [
                self._open_pairs[pair]
                for pair in self._open_by_instance.get(instance_id, ())
                if self._open_pairs[pair].state is WorkItemState.OFFERED
            ]

    def _authorised(self, user: str, role: Optional[str]) -> bool:
        if role is None:
            return True
        if self.org_model is None:
            return True
        return self.org_model.user_has_role(user, role)

    def claim(self, item_id: str, user: str, enforce_roles: bool = True) -> WorkItem:
        """Claim an offered work item for ``user``.

        The OFFERED→CLAIMED flip is atomic under the manager lock, so two
        racing claimers resolve to exactly one winner; the loser raises.
        The engine start runs outside the lock (under the execution
        guard); any failure — unknown instance, un-activated activity —
        reverts the item to OFFERED (unless the item was withdrawn in the
        meantime, e.g. its case was deleted — a withdrawn item must never
        be resurrected into the offered set).

        ``enforce_roles=False`` skips the org-model authorisation check:
        the worker pool executes items *as the system* (like
        ``step_many`` does), not as a named human user.
        """
        with self._lock:
            item = self._item(item_id)
            if item.state is not WorkItemState.OFFERED:
                raise EngineError(
                    f"work item {item_id!r} is not offered (state={item.state.value})"
                )
            if enforce_roles and not self._authorised(user, item.role):
                raise EngineError(f"user {user!r} lacks role {item.role!r} required by {item_id!r}")
            item.state = WorkItemState.CLAIMED
            item.claimed_by = user
        try:
            with self._execution(item.instance_id) as instance:
                self.engine.start_activity(instance, item.activity_id, user=user)
        except BaseException:
            self._revert_failed_claim(item, user)
            raise
        return item

    def _revert_failed_claim(self, item: WorkItem, user: str) -> None:
        """Put a claim whose engine start failed back into a sane state.

        Only while it is still our claim (a concurrent
        ``discard_instance`` may have withdrawn it already), and only
        back to OFFERED while the activity is *actually still activated*
        — re-offering a stale item (its activity was completed, skipped
        or deleted under the claim) would leave a phantom no completion
        ever clears, which livelocks ``WorkerPool.drain``.
        """
        with self._lock:
            if item.state is not WorkItemState.CLAIMED or item.claimed_by != user:
                return
            with self._registry_lock:
                instance = self._instances.get(item.instance_id)
            still_activated = False
            if instance is not None:
                if instance.process_type in self.quiescing_types:
                    # the marking is mid-migration and unreadable; keep the
                    # item offered — the evolve's closing refresh withdraws
                    # it if the migrated case no longer activates it
                    still_activated = True
                else:
                    with self._reading(item.instance_id):
                        still_activated = item.activity_id in instance.activated_activities()
            item.claimed_by = None
            if still_activated:
                item.state = WorkItemState.OFFERED
            else:
                item.state = WorkItemState.WITHDRAWN
                pair = (item.instance_id, item.activity_id)
                if pair in self._open_pairs:
                    self._drop_open_pair(pair)

    def complete(
        self,
        item_id: str,
        outputs: Optional[Mapping[str, Any]] = None,
        auto_outputs: bool = False,
        worker: Optional[Any] = None,
        refresh: bool = True,
    ) -> WorkItem:
        """Complete a claimed work item through the engine.

        ``auto_outputs=True`` generates outputs the way scripted
        execution does (via ``worker``, or the engine's plausible
        defaults) — the worker pool uses it so loop conditions and
        guards keep progressing.  ``refresh=False`` synchronises only
        this item's case instead of the whole population.
        """
        with self._lock:
            item = self._item(item_id)
            if item.state is not WorkItemState.CLAIMED or item_id in self._completing:
                raise EngineError(
                    f"work item {item_id!r} is not claimed (state={item.state.value})"
                )
            self._completing.add(item_id)
        try:
            with self._execution(item.instance_id) as instance:
                if outputs is None and auto_outputs:
                    outputs = self.engine.outputs_for(instance, item.activity_id, worker)
                self.engine.complete_activity(
                    instance, item.activity_id, outputs=outputs, user=item.claimed_by
                )
            with self._lock:
                item.state = WorkItemState.COMPLETED
                if (item.instance_id, item.activity_id) in self._open_pairs:
                    self._drop_open_pair((item.instance_id, item.activity_id))
        finally:
            with self._lock:
                self._completing.discard(item_id)
        if refresh:
            self.refresh()
        else:
            self.sync_instance(instance)
        return item

    def open_items(self) -> List[WorkItem]:
        """All currently offered or claimed items."""
        with self._lock:
            return [
                item
                for item in self._items.values()
                if item.state in (WorkItemState.OFFERED, WorkItemState.CLAIMED)
            ]

    def items_for_instance(self, instance_id: str) -> List[WorkItem]:
        """All items (any state) belonging to one instance."""
        with self._lock:
            return [item for item in self._items.values() if item.instance_id == instance_id]

    def _item(self, item_id: str) -> WorkItem:
        try:
            return self._items[item_id]
        except KeyError:
            raise EngineError(f"unknown work item {item_id!r}") from None

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)
