"""Worklists: offering activated activities to authorised users.

Activated activities are turned into work items and offered to the users
whose role matches the activity's staff assignment (resolved through the
organisational model, :mod:`repro.org`).  A user claims an item, performs
the work and completes it through the engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Dict, List, Mapping, Optional

from repro.runtime.engine import EngineError, ProcessEngine
from repro.runtime.instance import ProcessInstance


class WorkItemState(str, Enum):
    """Lifecycle of a work item."""

    OFFERED = "offered"
    CLAIMED = "claimed"
    COMPLETED = "completed"
    WITHDRAWN = "withdrawn"


@dataclass
class WorkItem:
    """One offered unit of work (an activated activity of an instance)."""

    item_id: str
    instance_id: str
    activity_id: str
    role: Optional[str]
    state: WorkItemState = WorkItemState.OFFERED
    claimed_by: Optional[str] = None

    def __str__(self) -> str:
        who = f" by {self.claimed_by}" if self.claimed_by else ""
        return f"[{self.state.value}] {self.instance_id}/{self.activity_id} (role={self.role}){who}"


class WorklistManager:
    """Maintains work items for a set of instances driven by one engine."""

    def __init__(self, engine: ProcessEngine, org_model: Optional[Any] = None) -> None:
        self.engine = engine
        self.org_model = org_model
        self._items: Dict[str, WorkItem] = {}
        self._instances: Dict[str, ProcessInstance] = {}
        self._counter = 0
        #: Open (offered or claimed) items indexed by (instance, activity) —
        #: kept incrementally so refresh and registration stay linear in the
        #: number of *activations*, not in the total item history.
        self._open_pairs: Dict[tuple, WorkItem] = {}
        #: Optional hook mapping an instance id to a live instance.  The
        #: façade's lazy-hydration cache sets this so claiming or completing
        #: a work item of an evicted case transparently re-hydrates it from
        #: the instance store.
        self.instance_resolver: Optional[Any] = None

    # ------------------------------------------------------------------ #

    def register_instance(self, instance: ProcessInstance, refresh: bool = True) -> None:
        """Track an instance and create work items for its activated activities.

        Registration offers items for *this* instance only (a global
        refresh per registration would make bulk population starts
        quadratic).  ``refresh=False`` defers even that to the next
        :meth:`refresh` — worklist views refresh on read, so bulk
        hydration uses it to stay linear.
        """
        self._instances[instance.instance_id] = instance
        if refresh:
            self._offer_items_for(instance)

    def unregister_instance(self, instance_id: str) -> None:
        """Stop tracking an instance (eviction from the live cache).

        Its open work items stay offered — the case still exists in the
        instance store; claiming one re-hydrates it through
        :attr:`instance_resolver`.
        """
        self._instances.pop(instance_id, None)

    def discard_instance(self, instance_id: str) -> None:
        """Stop tracking an instance *and* withdraw its open work items.

        Used when the case ceases to exist (deletion) — unlike eviction,
        nothing could ever re-hydrate it, so offered items must not
        linger.
        """
        self.unregister_instance(instance_id)
        for pair in [pair for pair in self._open_pairs if pair[0] == instance_id]:
            self._open_pairs.pop(pair).state = WorkItemState.WITHDRAWN

    def _live_instance(self, instance_id: str) -> ProcessInstance:
        instance = self._instances.get(instance_id)
        if instance is not None:
            return instance
        if self.instance_resolver is not None:
            # hydrates and re-registers through the façade
            return self.instance_resolver(instance_id)
        raise EngineError(f"instance {instance_id!r} is not registered with the worklist manager")

    def _offer_items_for(self, instance: ProcessInstance) -> set:
        """Create items for an instance's activations; returns its active pairs."""
        schema = instance.execution_schema
        pairs = set()
        for activity_id in instance.activated_activities():
            pair = (instance.instance_id, activity_id)
            pairs.add(pair)
            if pair not in self._open_pairs:
                self._counter += 1
                role = schema.node(activity_id).staff_assignment
                item = WorkItem(
                    item_id=f"wi-{self._counter}",
                    instance_id=instance.instance_id,
                    activity_id=activity_id,
                    role=role,
                )
                self._items[item.item_id] = item
                self._open_pairs[pair] = item
        return pairs

    def refresh(self) -> None:
        """Synchronise work items with the current activations of all instances."""
        active_pairs = set()
        for instance in self._instances.values():
            active_pairs |= self._offer_items_for(instance)
        # withdraw items whose activity is no longer activated (e.g. the
        # activity was deleted by an ad-hoc change or skipped); items of
        # unregistered (evicted) instances are left offered — the case
        # still exists in the instance store
        for pair, item in list(self._open_pairs.items()):
            if pair[0] in self._instances and pair not in active_pairs:
                item.state = WorkItemState.WITHDRAWN
                del self._open_pairs[pair]

    def _has_open_item(self, instance_id: str, activity_id: str) -> bool:
        return (instance_id, activity_id) in self._open_pairs

    # ------------------------------------------------------------------ #

    def worklist_for(self, user: str) -> List[WorkItem]:
        """Open work items the given user is authorised to perform."""
        items = []
        for item in self._items.values():
            if item.state is not WorkItemState.OFFERED:
                continue
            if self._authorised(user, item.role):
                items.append(item)
        return items

    def _authorised(self, user: str, role: Optional[str]) -> bool:
        if role is None:
            return True
        if self.org_model is None:
            return True
        return self.org_model.user_has_role(user, role)

    def claim(self, item_id: str, user: str) -> WorkItem:
        """Claim an offered work item for ``user``."""
        item = self._item(item_id)
        if item.state is not WorkItemState.OFFERED:
            raise EngineError(f"work item {item_id!r} is not offered (state={item.state.value})")
        if not self._authorised(user, item.role):
            raise EngineError(f"user {user!r} lacks role {item.role!r} required by {item_id!r}")
        # resolve (and possibly re-hydrate) the instance before mutating the
        # item — a failed resolution must not leave the item stuck CLAIMED
        instance = self._live_instance(item.instance_id)
        item.state = WorkItemState.CLAIMED
        item.claimed_by = user
        self.engine.start_activity(instance, item.activity_id, user=user)
        return item

    def complete(self, item_id: str, outputs: Optional[Mapping[str, Any]] = None) -> WorkItem:
        """Complete a claimed work item through the engine."""
        item = self._item(item_id)
        if item.state is not WorkItemState.CLAIMED:
            raise EngineError(f"work item {item_id!r} is not claimed (state={item.state.value})")
        instance = self._live_instance(item.instance_id)
        self.engine.complete_activity(instance, item.activity_id, outputs=outputs, user=item.claimed_by)
        item.state = WorkItemState.COMPLETED
        self._open_pairs.pop((item.instance_id, item.activity_id), None)
        self.refresh()
        return item

    def open_items(self) -> List[WorkItem]:
        """All currently offered or claimed items."""
        return [
            item
            for item in self._items.values()
            if item.state in (WorkItemState.OFFERED, WorkItemState.CLAIMED)
        ]

    def items_for_instance(self, instance_id: str) -> List[WorkItem]:
        """All items (any state) belonging to one instance."""
        return [item for item in self._items.values() if item.instance_id == instance_id]

    def _item(self, item_id: str) -> WorkItem:
        try:
            return self._items[item_id]
        except KeyError:
            raise EngineError(f"unknown work item {item_id!r}") from None

    def __len__(self) -> int:
        return len(self._items)
