"""Worklists: offering activated activities to authorised users.

Activated activities are turned into work items and offered to the users
whose role matches the activity's staff assignment (resolved through the
organisational model, :mod:`repro.org`).  A user claims an item, performs
the work and completes it through the engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Dict, List, Mapping, Optional

from repro.runtime.engine import EngineError, ProcessEngine
from repro.runtime.instance import ProcessInstance


class WorkItemState(str, Enum):
    """Lifecycle of a work item."""

    OFFERED = "offered"
    CLAIMED = "claimed"
    COMPLETED = "completed"
    WITHDRAWN = "withdrawn"


@dataclass
class WorkItem:
    """One offered unit of work (an activated activity of an instance)."""

    item_id: str
    instance_id: str
    activity_id: str
    role: Optional[str]
    state: WorkItemState = WorkItemState.OFFERED
    claimed_by: Optional[str] = None

    def __str__(self) -> str:
        who = f" by {self.claimed_by}" if self.claimed_by else ""
        return f"[{self.state.value}] {self.instance_id}/{self.activity_id} (role={self.role}){who}"


class WorklistManager:
    """Maintains work items for a set of instances driven by one engine."""

    def __init__(self, engine: ProcessEngine, org_model: Optional[Any] = None) -> None:
        self.engine = engine
        self.org_model = org_model
        self._items: Dict[str, WorkItem] = {}
        self._instances: Dict[str, ProcessInstance] = {}
        self._counter = 0

    # ------------------------------------------------------------------ #

    def register_instance(self, instance: ProcessInstance) -> None:
        """Track an instance and create work items for its activated activities."""
        self._instances[instance.instance_id] = instance
        self.refresh()

    def refresh(self) -> None:
        """Synchronise work items with the current activations of all instances."""
        active_pairs = set()
        for instance in self._instances.values():
            schema = instance.execution_schema
            for activity_id in instance.activated_activities():
                active_pairs.add((instance.instance_id, activity_id))
                if not self._has_open_item(instance.instance_id, activity_id):
                    self._counter += 1
                    role = schema.node(activity_id).staff_assignment
                    item = WorkItem(
                        item_id=f"wi-{self._counter}",
                        instance_id=instance.instance_id,
                        activity_id=activity_id,
                        role=role,
                    )
                    self._items[item.item_id] = item
        # withdraw items whose activity is no longer activated (e.g. the
        # activity was deleted by an ad-hoc change or skipped)
        for item in self._items.values():
            if item.state in (WorkItemState.OFFERED, WorkItemState.CLAIMED):
                if (item.instance_id, item.activity_id) not in active_pairs:
                    item.state = WorkItemState.WITHDRAWN

    def _has_open_item(self, instance_id: str, activity_id: str) -> bool:
        return any(
            item.instance_id == instance_id
            and item.activity_id == activity_id
            and item.state in (WorkItemState.OFFERED, WorkItemState.CLAIMED)
            for item in self._items.values()
        )

    # ------------------------------------------------------------------ #

    def worklist_for(self, user: str) -> List[WorkItem]:
        """Open work items the given user is authorised to perform."""
        items = []
        for item in self._items.values():
            if item.state is not WorkItemState.OFFERED:
                continue
            if self._authorised(user, item.role):
                items.append(item)
        return items

    def _authorised(self, user: str, role: Optional[str]) -> bool:
        if role is None:
            return True
        if self.org_model is None:
            return True
        return self.org_model.user_has_role(user, role)

    def claim(self, item_id: str, user: str) -> WorkItem:
        """Claim an offered work item for ``user``."""
        item = self._item(item_id)
        if item.state is not WorkItemState.OFFERED:
            raise EngineError(f"work item {item_id!r} is not offered (state={item.state.value})")
        if not self._authorised(user, item.role):
            raise EngineError(f"user {user!r} lacks role {item.role!r} required by {item_id!r}")
        item.state = WorkItemState.CLAIMED
        item.claimed_by = user
        self.engine.start_activity(self._instances[item.instance_id], item.activity_id, user=user)
        return item

    def complete(self, item_id: str, outputs: Optional[Mapping[str, Any]] = None) -> WorkItem:
        """Complete a claimed work item through the engine."""
        item = self._item(item_id)
        if item.state is not WorkItemState.CLAIMED:
            raise EngineError(f"work item {item_id!r} is not claimed (state={item.state.value})")
        instance = self._instances[item.instance_id]
        self.engine.complete_activity(instance, item.activity_id, outputs=outputs, user=item.claimed_by)
        item.state = WorkItemState.COMPLETED
        self.refresh()
        return item

    def open_items(self) -> List[WorkItem]:
        """All currently offered or claimed items."""
        return [
            item
            for item in self._items.values()
            if item.state in (WorkItemState.OFFERED, WorkItemState.CLAIMED)
        ]

    def items_for_instance(self, instance_id: str) -> List[WorkItem]:
        """All items (any state) belonging to one instance."""
        return [item for item in self._items.values() if item.instance_id == instance_id]

    def _item(self, item_id: str) -> WorkItem:
        try:
            return self._items[item_id]
        except KeyError:
            raise EngineError(f"unknown work item {item_id!r}") from None

    def __len__(self) -> int:
        return len(self._items)
