"""Safe evaluation of guard and loop-condition expressions.

Branch guards and loop conditions are boolean expressions over the
process data elements (e.g. ``"score >= 50 and not rejected"``).  They
are evaluated with a restricted AST interpreter — no attribute access, no
calls, no subscripts — so that schema authors cannot execute arbitrary
code through a process template.
"""

from __future__ import annotations

import ast
import operator
from functools import lru_cache
from typing import Any, Mapping

from repro.errors import ReproError


class ExpressionError(ReproError):
    """Raised when an expression is malformed or references unknown names."""


_BIN_OPS = {
    ast.Add: operator.add,
    ast.Sub: operator.sub,
    ast.Mult: operator.mul,
    ast.Div: operator.truediv,
    ast.FloorDiv: operator.floordiv,
    ast.Mod: operator.mod,
}

_COMPARE_OPS = {
    ast.Eq: operator.eq,
    ast.NotEq: operator.ne,
    ast.Lt: operator.lt,
    ast.LtE: operator.le,
    ast.Gt: operator.gt,
    ast.GtE: operator.ge,
    ast.In: lambda left, right: left in right,
    ast.NotIn: lambda left, right: left not in right,
}


def _evaluate(node: ast.AST, values: Mapping[str, Any]) -> Any:
    if isinstance(node, ast.Expression):
        return _evaluate(node.body, values)
    if isinstance(node, ast.Constant):
        return node.value
    if isinstance(node, ast.Name):
        if node.id not in values:
            raise ExpressionError(f"unknown data element {node.id!r} in expression")
        return values[node.id]
    if isinstance(node, ast.BoolOp):
        results = [_evaluate(value, values) for value in node.values]
        if isinstance(node.op, ast.And):
            outcome = True
            for result in results:
                outcome = outcome and result
            return outcome
        outcome = False
        for result in results:
            outcome = outcome or result
        return outcome
    if isinstance(node, ast.UnaryOp):
        operand = _evaluate(node.operand, values)
        if isinstance(node.op, ast.Not):
            return not operand
        if isinstance(node.op, ast.USub):
            return -operand
        if isinstance(node.op, ast.UAdd):
            return +operand
        raise ExpressionError(f"unsupported unary operator: {ast.dump(node.op)}")
    if isinstance(node, ast.BinOp):
        op_type = type(node.op)
        if op_type not in _BIN_OPS:
            raise ExpressionError(f"unsupported binary operator: {op_type.__name__}")
        return _BIN_OPS[op_type](_evaluate(node.left, values), _evaluate(node.right, values))
    if isinstance(node, ast.Compare):
        left = _evaluate(node.left, values)
        for op, comparator in zip(node.ops, node.comparators):
            op_type = type(op)
            if op_type not in _COMPARE_OPS:
                raise ExpressionError(f"unsupported comparison: {op_type.__name__}")
            right = _evaluate(comparator, values)
            if not _COMPARE_OPS[op_type](left, right):
                return False
            left = right
        return True
    if isinstance(node, (ast.List, ast.Tuple)):
        return [_evaluate(element, values) for element in node.elts]
    raise ExpressionError(f"unsupported expression construct: {type(node).__name__}")


@lru_cache(maxsize=2048)
def compile_expression(expression: str) -> ast.Expression:
    """Parse ``expression`` into its AST, memoized in a bounded LRU cache.

    Guards and loop conditions are evaluated on every branching decision
    of every instance, but a schema only carries a handful of distinct
    expression strings — caching the parsed AST removes the dominant
    ``ast.parse`` cost from the hot path.  The returned tree is shared;
    the interpreter in :func:`_evaluate` never mutates it.  Parse
    failures are not cached (they re-raise on every call, which only
    malformed schemas hit).
    """
    if not expression or not expression.strip():
        raise ExpressionError("expression must be non-empty")
    try:
        return ast.parse(expression, mode="eval")
    except SyntaxError as exc:
        raise ExpressionError(f"malformed expression {expression!r}: {exc}") from exc


def clear_expression_cache() -> None:
    """Drop all memoized expression ASTs (tests and long-lived services)."""
    compile_expression.cache_clear()


def evaluate_expression(expression: str, values: Mapping[str, Any]) -> Any:
    """Evaluate ``expression`` over ``values`` and return the raw result."""
    return _evaluate(compile_expression(expression), values)


def evaluate_condition(expression: str, values: Mapping[str, Any]) -> bool:
    """Evaluate ``expression`` and coerce the result to a boolean.

    ``None`` values of referenced data elements are treated as "absent"
    and make the condition false rather than raising, so that guards over
    not-yet-written optional data behave predictably.
    """
    try:
        result = evaluate_expression(expression, values)
    except ExpressionError:
        raise
    except TypeError:
        return False
    return bool(result)
