"""Runtime components of the ADEPT2 reproduction.

The runtime executes process instances on verified schemas: it manages
node and edge markings, activity state transitions, loop iterations,
data values, execution histories and worklists.  Ad-hoc changes and
instance migrations (:mod:`repro.core`) operate on the objects defined
here.
"""

from repro.runtime.states import EdgeState, InstanceStatus, NodeState
from repro.runtime.markings import Marking
from repro.runtime.history import ExecutionHistory, HistoryEntry, HistoryEventType
from repro.runtime.data_context import DataContext
from repro.runtime.instance import ProcessInstance
from repro.runtime.engine import (
    EngineError,
    JoinSignalConflictError,
    ProcessEngine,
    PropagationLimitError,
)
from repro.runtime.kernel import (
    MarkingLayout,
    StepKernel,
    compiled_stepping_enabled,
    set_compiled_stepping,
    without_compiled_kernel,
)
from repro.runtime.markings import DenseMarking
from repro.runtime.worklist import WorkItem, WorkItemState, WorklistManager
from repro.runtime.events import EngineEvent, EventLog, EventType
from repro.runtime.expressions import ExpressionError, evaluate_condition

__all__ = [
    "EdgeState",
    "InstanceStatus",
    "NodeState",
    "Marking",
    "DenseMarking",
    "MarkingLayout",
    "StepKernel",
    "JoinSignalConflictError",
    "PropagationLimitError",
    "compiled_stepping_enabled",
    "set_compiled_stepping",
    "without_compiled_kernel",
    "ExecutionHistory",
    "HistoryEntry",
    "HistoryEventType",
    "DataContext",
    "ProcessInstance",
    "EngineError",
    "ProcessEngine",
    "WorkItem",
    "WorkItemState",
    "WorklistManager",
    "EngineEvent",
    "EventLog",
    "EventType",
    "ExpressionError",
    "evaluate_condition",
]
