"""Per-instance data values with write history.

Every process instance carries its own values for the schema's data
elements.  Writes are versioned (which activity wrote which value in
which loop iteration) because ad-hoc deletions need to know whether a
value another activity depends on would go missing, and because the
storage layer persists the value history for recovery.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional

from repro.schema.graph import ProcessSchema


@dataclass(frozen=True)
class DataWrite:
    """One recorded write of a data element."""

    element: str
    value: Any
    writer: str
    iteration: int = 0


class DataContext:
    """Current values plus write history of an instance's data elements."""

    def __init__(self, schema: Optional[ProcessSchema] = None) -> None:
        self._values: Dict[str, Any] = {}
        self._writes: List[DataWrite] = []
        if schema is not None:
            for element in schema.data_elements.values():
                initial = element.initial_value()
                if initial is not None:
                    self._values[element.name] = initial

    # ------------------------------------------------------------------ #

    @property
    def values(self) -> Dict[str, Any]:
        """Snapshot of the current values (copy; safe to hand out)."""
        return dict(self._values)

    @property
    def writes(self) -> List[DataWrite]:
        """Chronological list of all recorded writes."""
        return list(self._writes)

    def get(self, element: str, default: Any = None) -> Any:
        return self._values.get(element, default)

    def has_value(self, element: str) -> bool:
        """True when the element currently holds a value."""
        return element in self._values

    def write(self, element: str, value: Any, writer: str, iteration: int = 0) -> None:
        """Record a write of ``element`` by activity ``writer``."""
        self._values[element] = value
        self._writes.append(DataWrite(element=element, value=value, writer=writer, iteration=iteration))

    def supply(self, element: str, value: Any) -> None:
        """Set a value without an owning activity (missing-data supply).

        Used when an ad-hoc deletion removes the writer of an element that
        a later activity reads: the user (or the change operation) supplies
        a substitute value so the reader does not start with missing input.
        """
        self.write(element, value, writer="<supplied>")

    def writers_of(self, element: str) -> List[str]:
        """All activities that wrote ``element`` so far."""
        return [w.writer for w in self._writes if w.element == element]

    def last_write(self, element: str) -> Optional[DataWrite]:
        """The most recent write of ``element``, if any."""
        for write in reversed(self._writes):
            if write.element == element:
                return write
        return None

    def copy(self) -> "DataContext":
        clone = DataContext()
        clone._values = dict(self._values)
        clone._writes = list(self._writes)
        return clone

    # ------------------------------------------------------------------ #

    def to_dict(self) -> dict:
        return {
            "values": dict(self._values),
            "writes": [
                {
                    "element": w.element,
                    "value": w.value,
                    "writer": w.writer,
                    "iteration": w.iteration,
                }
                for w in self._writes
            ],
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "DataContext":
        context = cls()
        context._values = dict(payload.get("values", {}))
        context._writes = [
            DataWrite(
                element=item["element"],
                value=item.get("value"),
                writer=item.get("writer", ""),
                iteration=item.get("iteration", 0),
            )
            for item in payload.get("writes", [])
        ]
        return context

    def __repr__(self) -> str:
        return f"DataContext(values={len(self._values)}, writes={len(self._writes)})"
