"""The ADEPT2 execution engine.

The engine drives process instances over their execution schema: it
activates activities whose predecessors are properly signalled, executes
structural nodes automatically (splits, joins, loops), performs dead-path
elimination for non-chosen XOR branches, resets loop bodies on loop-back
and maintains the execution history, data context and loop iteration
counters of each instance.

Only activity nodes require explicit :meth:`ProcessEngine.start_activity`
and :meth:`ProcessEngine.complete_activity` calls — everything structural
advances automatically, which is what lets migrated instances simply
"keep running" after their marking was adapted.

**Thread-safety contract.**  One engine may drive disjoint instances
from many threads concurrently, provided each *instance* is driven by at
most one thread at a time (the :class:`~repro.system.AdeptSystem` façade
enforces this with striped per-instance locks).  The step path touches
no shared mutable state: all execution state lives on the instance, the
compiled :class:`~repro.schema.index.SchemaIndex` is an immutable
snapshot shared read-only across threads, and the engine's only caches
publish fully-computed values atomically.  Driving the *same* instance
from two threads without external locking is not supported.
"""

from __future__ import annotations

import threading

from heapq import heapify, heappop, heappush
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.errors import ReproError
from repro.runtime.data_context import DataContext
from repro.runtime.events import EngineEvent, EventLog, EventType
from repro.runtime.expressions import ExpressionError, evaluate_condition
from repro.runtime.history import HistoryEventType
from repro.runtime.instance import ProcessInstance
from repro.runtime.kernel import (
    ACTION_END,
    ACTION_LOOP_END,
    ACTION_XOR_SPLIT,
    StepKernel,
    compiled_stepping_enabled,
    scan_round_bound,
)
from repro.runtime.markings import Marking
from repro.runtime.states import EdgeState, InstanceStatus, NodeState
from repro.schema.data import DataType
from repro.schema.edges import Edge, EdgeType
from repro.schema.graph import ProcessSchema
from repro.schema.index import SchemaIndex, indexing_enabled
from repro.schema.nodes import Node, NodeType


class EngineError(ReproError):
    """Raised when an instance is driven in an illegal way."""


class JoinSignalConflictError(EngineError):
    """An AND join received mixed TRUE/FALSE branch signals.

    All incoming control edges of the join are signalled, but some carry
    TRUE and some FALSE: the join can neither fire (a branch was
    dead-path-eliminated) nor be skipped (a branch really ran).  A
    correct block-structured schema never produces this marking —
    ill-formed schemas and buggy migrations do, and the engine used to
    wait on it forever.  The message names the join node and the state of
    every incoming control edge.
    """


class PropagationLimitError(EngineError):
    """Marking propagation exceeded its round bound without converging.

    Carries the instance id, the number of rounds executed and the set of
    nodes that were still changing when the bound hit — enough context to
    tell a genuinely diverging schema (structural cycle of automatically
    executing nodes) from an engine bug.
    """

    def __init__(self, instance_id: str, rounds: int, changing_nodes: Iterable[str]) -> None:
        self.instance_id = instance_id
        self.rounds = rounds
        self.changing_nodes = sorted(set(changing_nodes))
        super().__init__(
            f"marking propagation for instance {instance_id!r} did not converge "
            f"after {rounds} rounds; still-changing nodes: {self.changing_nodes!r} "
            f"(structural cycle of automatically executing nodes, or engine bug)"
        )


# A worker turns an activated activity into its output data values.
Worker = Callable[[Node, Mapping[str, Any]], Mapping[str, Any]]

_NOT_SIGNALED = EdgeState.NOT_SIGNALED
_TRUE_SIGNALED = EdgeState.TRUE_SIGNALED
_FALSE_SIGNALED = EdgeState.FALSE_SIGNALED


def _decide_entry(spec, edge_states) -> Optional[str]:
    """Entry decision for one node from its compiled spec (hot path).

    ``spec`` is the ``(kind, control keys, sync keys)`` triple produced by
    :meth:`repro.schema.index.SchemaIndex.entry_specs`; ``edge_states`` is
    the marking's raw edge-state dict.  Semantically identical to
    :meth:`ProcessEngine._entry_decision` with indexing disabled — the
    decision rules mirror that method line by line, minus all per-edge
    object traffic.
    """
    kind, control_keys, sync_keys = spec
    if kind == 0:  # START
        return "activate"
    if not control_keys:
        return None
    get = edge_states.get
    sync_ready = True
    for key in sync_keys:
        if get(key, _NOT_SIGNALED) is _NOT_SIGNALED:
            sync_ready = False
            break
    if kind == 3:  # single incoming control edge (the overwhelming majority)
        state = get(control_keys[0], _NOT_SIGNALED)
        if state is _TRUE_SIGNALED:
            return "activate" if sync_ready else None
        if state is _FALSE_SIGNALED:
            return "skip"
        return None
    states = [get(key, _NOT_SIGNALED) for key in control_keys]
    if kind == 1:  # AND join
        true_count = 0
        for state in states:
            if state is _NOT_SIGNALED:
                return None
            if state is _TRUE_SIGNALED:
                true_count += 1
        if true_count == 0:
            return "skip"
        if true_count == len(states):
            return "activate" if sync_ready else None
        # Mixed TRUE/FALSE signals: the join can never fire nor be skipped.
        # The caller raises JoinSignalConflictError with full edge context.
        return "conflict"
    # XOR join
    any_true = False
    for state in states:
        if state is _NOT_SIGNALED:
            return None
        if state is _TRUE_SIGNALED:
            any_true = True
    if any_true:
        return "activate" if sync_ready else None
    return "skip"


def default_worker(node: Node, data: Mapping[str, Any]) -> Dict[str, Any]:
    """Produce plausible outputs for every data element an activity writes.

    Booleans become ``True`` so that loop exit conditions and approval
    guards eventually hold; other types receive simple non-empty values.
    The worker is used by :meth:`ProcessEngine.run_to_completion` and the
    workload generators when no domain-specific behaviour is supplied.
    """
    outputs: Dict[str, Any] = {}
    for data_edge in node.properties.get("_writes", []):  # pragma: no cover - legacy hook
        outputs[data_edge] = True
    return outputs


class ProcessEngine:
    """Executes process instances on (verified) process schemas."""

    def __init__(
        self, event_log: Optional[EventLog] = None, max_propagation_rounds: Optional[int] = None
    ) -> None:
        # an empty EventLog is falsy (it has __len__), so test for None explicitly
        self.event_log = event_log if event_log is not None else EventLog()
        #: Explicit round bound override.  ``None`` (the default) derives
        #: the bound from the schema: topological depth × loop-iteration
        #: budget, floored at the legacy constant of 10000 — see
        #: :func:`repro.runtime.kernel.derive_round_bound`.
        self.max_propagation_rounds = max_propagation_rounds
        # per-thread sink capturing which nodes had in-edges touched or
        # were reset during signalling; lets the propagation kernels seed
        # their worklist with exactly the nodes whose entry decision can
        # have changed.  Thread-local because one engine may drive
        # disjoint instances from many threads.
        self._touch_sink = threading.local()
        # loop-body cache for the scan path (indexing disabled); the
        # indexed path uses the SchemaIndex's own caches instead.  Guarded
        # by a lock: the cache is keyed by id(schema) and shared by every
        # thread driving instances through this engine.
        self._loop_body_cache: Dict[Tuple[int, str], Set[str]] = {}
        self._loop_body_cache_lock = threading.Lock()
        # derived round bounds for the scan path (indexing disabled); the
        # indexed paths use the SchemaIndex / StepKernel caches instead
        self._scan_bound_cache: Dict[int, int] = {}
        #: Optional hook invoked after every committed activity transition
        #: with ``(action, instance, activity_id, outputs, user)`` where
        #: ``action`` is ``"start"`` or ``"complete"``.  The durability
        #: layer journals these as typed WAL records; unlike the event log
        #: the hook receives the *actual outputs* written by the step, so a
        #: crash-recovery replay reproduces the exact data context.
        self.step_listener: Optional[Callable[[str, ProcessInstance, str, Optional[Dict[str, Any]], Optional[str]], None]] = None
        #: Optional fail-fast check run on the outputs of a completing
        #: activity *before* any state is mutated.  The durability layer
        #: installs a JSON-serialisability check here: an output the
        #: write-ahead log cannot record must reject the step up front,
        #: not diverge the journal from an already-committed transition.
        self.step_outputs_validator: Optional[Callable[[Mapping[str, Any]], None]] = None
        #: Optional hook invoked with the instance *before* an activity
        #: transition executes.  The progressive-rollout machinery installs
        #: its lazy on-touch migration here: a case still on the old schema
        #: version of an in-flight rollout adopts the new version the moment
        #: it is actually worked on, before the step runs.
        self.touch_listener: Optional[Callable[[ProcessInstance], None]] = None

    # ------------------------------------------------------------------ #
    # instance lifecycle
    # ------------------------------------------------------------------ #

    def create_instance(
        self,
        schema: ProcessSchema,
        instance_id: str,
        initial_data: Optional[Mapping[str, Any]] = None,
    ) -> ProcessInstance:
        """Create a new instance of ``schema`` and advance it to its first activities."""
        instance = ProcessInstance(instance_id=instance_id, schema=schema, initial_data=initial_data)
        instance.status = InstanceStatus.RUNNING
        self._emit(EventType.INSTANCE_CREATED, instance, node=None)
        self.propagate(instance)
        return instance

    def activated_activities(self, instance: ProcessInstance) -> List[str]:
        """Activity ids the user could start right now (worklist content)."""
        return instance.activated_activities()

    def _first_activated_compiled(
        self, instance: ProcessInstance, kernel: StepKernel
    ) -> Optional[str]:
        """First activated activity id, via the dense view when possible.

        Byte-for-byte the same answer as ``activated_activities()[0]``:
        when the dense view is aligned (marking holds exactly the layout's
        nodes in layout order) the positional scan visits nodes in
        marking-dict order, and ``bytearray.find`` runs it at C speed in
        O(first hit) instead of O(schema).  Unaligned markings (ad-hoc
        changed instances) fall back to the dict scan.
        """
        view = instance.marking.dense_view(kernel.layout)
        if not view.aligned:
            activated = instance.activated_activities()
            return activated[0] if activated else None
        flags = view.activated
        is_activity = kernel.is_activity
        position = flags.find(1)
        while position != -1:
            if is_activity[position]:
                return kernel.node_ids[position]
            position = flags.find(1, position + 1)
        return None

    def start_activity(
        self, instance: ProcessInstance, activity_id: str, user: Optional[str] = None
    ) -> None:
        """Move an activated activity to RUNNING and log the start event."""
        if self.touch_listener is not None:
            self.touch_listener(instance)
        self._require_active(instance)
        schema = instance.execution_schema
        node = schema.node(activity_id)
        if not node.is_activity:
            raise EngineError(f"{activity_id!r} is not an activity node")
        state = instance.marking.node_state(activity_id)
        if state is not NodeState.ACTIVATED:
            raise EngineError(
                f"activity {activity_id!r} cannot be started from state {state.value!r}"
            )
        instance.marking.set_node_state(activity_id, NodeState.RUNNING)
        read_values = {
            data_edge.element: instance.data.get(data_edge.element)
            for data_edge in schema.reads_of(activity_id)
        }
        instance.history.record(
            HistoryEventType.ACTIVITY_STARTED,
            activity_id,
            iteration=self._iteration_of(instance, activity_id),
            values=read_values,
            user=user,
        )
        self._emit(EventType.ACTIVITY_STARTED, instance, node=activity_id, user=user)
        if self.step_listener is not None:
            self.step_listener("start", instance, activity_id, None, user)

    def complete_activity(
        self,
        instance: ProcessInstance,
        activity_id: str,
        outputs: Optional[Mapping[str, Any]] = None,
        user: Optional[str] = None,
    ) -> None:
        """Complete a running activity, write its outputs and advance the instance.

        The activity may also be completed directly from ACTIVATED state
        (implicit start), which keeps scripted executions short.
        """
        if self.touch_listener is not None:
            self.touch_listener(instance)
        self._require_active(instance)
        schema = instance.execution_schema
        node = schema.node(activity_id)
        if not node.is_activity:
            raise EngineError(f"{activity_id!r} is not an activity node")
        outputs = dict(outputs or {})
        writable = {data_edge.element for data_edge in schema.writes_of(activity_id)}
        unknown = set(outputs) - writable
        if unknown:
            raise EngineError(
                f"activity {activity_id!r} has no write access to {sorted(unknown)!r}"
            )
        if outputs and self.step_outputs_validator is not None:
            # before any state moves — including the implicit start below —
            # so a rejected step leaves instance and journal untouched
            try:
                self.step_outputs_validator(outputs)
            except (TypeError, ValueError) as exc:
                raise EngineError(
                    f"activity {activity_id!r} outputs cannot be journaled: {exc}"
                ) from exc
        state = instance.marking.node_state(activity_id)
        if state is NodeState.ACTIVATED:
            self.start_activity(instance, activity_id, user=user)
        elif state not in (NodeState.RUNNING, NodeState.SUSPENDED):
            raise EngineError(
                f"activity {activity_id!r} cannot be completed from state {state.value!r}"
            )
        iteration = self._iteration_of(instance, activity_id)
        for element, value in outputs.items():
            instance.data.write(element, value, writer=activity_id, iteration=iteration)
        instance.marking.set_node_state(activity_id, NodeState.COMPLETED)
        instance.history.record(
            HistoryEventType.ACTIVITY_COMPLETED,
            activity_id,
            iteration=iteration,
            values=outputs,
            user=user,
        )
        self._emit(EventType.ACTIVITY_COMPLETED, instance, node=activity_id, user=user)
        self._advance_after_completion(instance, activity_id)
        if self.step_listener is not None:
            # after propagation: the listener journals the step only once the
            # whole transition (outputs, marking advance) is committed
            self.step_listener("complete", instance, activity_id, outputs, user)

    def _advance_after_completion(
        self, instance: ProcessInstance, activity_id: str, kernel: Optional[StepKernel] = None
    ) -> None:
        """Signal the completed activity's out-edges and re-propagate.

        On the compiled path, a marking whose dense view is still at
        fixpoint needs only the nodes the signals just touched re-examined
        — stepping cost becomes O(affected cascade) instead of O(schema).
        ``kernel`` lets :meth:`step_many_compiled` resolve the kernel once
        per batch instead of once per step.
        """
        if not (indexing_enabled() and compiled_stepping_enabled()):
            self._signal_outgoing(instance, activity_id, chosen_target=None, skipped=False)
            self._propagate_interpreted(instance)
            return
        schema = instance.execution_schema
        index = schema.index
        if kernel is None or kernel is not index._step_kernel:
            # the batch-resolved kernel no longer matches this instance's
            # schema (ad-hoc change, rollout adoption): re-resolve
            kernel = index.step_kernel()
        marking = instance.marking
        view = marking.dense_view(kernel.layout)
        was_fixpoint = view.at_fixpoint
        sink: List[str] = []
        position = kernel.layout.node_pos.get(activity_id)
        if position is not None:
            self._signal_kernel(marking, position, kernel, None, False, sink)
        else:  # activity outside the layout (should not happen; be safe)
            outer = self._touch_sink
            previous_sink = getattr(outer, "nodes", None)
            outer.nodes = sink
            try:
                self._signal_outgoing(instance, activity_id, chosen_target=None, skipped=False)
            finally:
                outer.nodes = previous_sink
        self._propagate_kernel(instance, kernel, seeds=sink if was_fixpoint else None)

    def suspend_activity(self, instance: ProcessInstance, activity_id: str) -> None:
        """Suspend a running activity (work interrupted)."""
        state = instance.marking.node_state(activity_id)
        if state is not NodeState.RUNNING:
            raise EngineError(f"activity {activity_id!r} is not running")
        instance.marking.set_node_state(activity_id, NodeState.SUSPENDED)

    def resume_activity(self, instance: ProcessInstance, activity_id: str) -> None:
        """Resume a suspended activity."""
        state = instance.marking.node_state(activity_id)
        if state is not NodeState.SUSPENDED:
            raise EngineError(f"activity {activity_id!r} is not suspended")
        instance.marking.set_node_state(activity_id, NodeState.RUNNING)

    def abort_instance(self, instance: ProcessInstance) -> None:
        """Abort the whole instance (baseline policy of non-adaptive systems)."""
        instance.status = InstanceStatus.ABORTED
        self._emit(EventType.INSTANCE_ABORTED, instance, node=None)

    # ------------------------------------------------------------------ #
    # scripted execution helpers
    # ------------------------------------------------------------------ #

    def run_to_completion(
        self,
        instance: ProcessInstance,
        worker: Optional[Worker] = None,
        max_steps: int = 10000,
    ) -> int:
        """Execute activated activities until the instance completes.

        Returns the number of activities executed.  ``worker`` maps an
        activity node and the current data values to its outputs; when
        omitted, plausible defaults are generated (booleans become True so
        loops terminate).
        """
        if indexing_enabled() and compiled_stepping_enabled():
            counts = self.step_many_compiled([instance], max_steps, worker)
            return counts[0]
        steps = 0
        while instance.status.is_active and steps < max_steps:
            activated = self.activated_activities(instance)
            if not activated:
                break
            activity_id = activated[0]
            outputs = self.outputs_for(instance, activity_id, worker)
            self.complete_activity(instance, activity_id, outputs=outputs)
            steps += 1
        return steps

    def advance_instance(
        self,
        instance: ProcessInstance,
        activity_count: int,
        worker: Optional[Worker] = None,
    ) -> int:
        """Complete up to ``activity_count`` activities (population generator)."""
        if indexing_enabled() and compiled_stepping_enabled():
            counts = self.step_many_compiled([instance], activity_count, worker)
            return counts[0]
        executed = 0
        while executed < activity_count and instance.status.is_active:
            activated = self.activated_activities(instance)
            if not activated:
                break
            activity_id = activated[0]
            outputs = self.outputs_for(instance, activity_id, worker)
            self.complete_activity(instance, activity_id, outputs=outputs)
            executed += 1
        return executed

    def step_many_compiled(
        self,
        instances: Sequence[ProcessInstance],
        activity_count: int,
        worker: Optional[Worker] = None,
    ) -> List[int]:
        """Advance a batch of instances with one kernel dispatch per schema.

        Equivalent to calling :meth:`advance_instance` per instance, but
        the compiled step kernel of each distinct execution schema is
        resolved once for the whole batch — instances of one process type
        share a schema object, so stepping a homogeneous batch touches the
        index exactly once.  Returns the per-instance executed counts in
        input order.  Falls back to :meth:`advance_instance` when the
        compiled path is disabled.
        """
        if not (indexing_enabled() and compiled_stepping_enabled()):
            return [
                self.advance_instance(instance, activity_count, worker)
                for instance in instances
            ]
        kernels: Dict[int, StepKernel] = {}
        results: List[int] = []
        for instance in instances:
            schema = instance.execution_schema
            index = schema.index
            kernel = kernels.get(id(schema))
            if kernel is None or kernel is not index._step_kernel:
                kernel = index.step_kernel()
                kernels[id(schema)] = kernel
            executed = 0
            while executed < activity_count and instance.status.is_active:
                activity_id = self._first_activated_compiled(instance, kernel)
                if activity_id is None:
                    break
                outputs = self.outputs_for(instance, activity_id, worker)
                self._complete_with_kernel(instance, activity_id, outputs, kernel)
                executed += 1
            results.append(executed)
        return results

    def _complete_with_kernel(
        self,
        instance: ProcessInstance,
        activity_id: str,
        outputs: Mapping[str, Any],
        kernel: StepKernel,
    ) -> None:
        """`complete_activity` with a batch-resolved kernel (hot loop body)."""
        if self.touch_listener is not None:
            self.touch_listener(instance)
        self._require_active(instance)
        schema = instance.execution_schema
        node = schema.node(activity_id)
        if not node.is_activity:
            raise EngineError(f"{activity_id!r} is not an activity node")
        outputs = dict(outputs or {})
        writable = {data_edge.element for data_edge in schema.writes_of(activity_id)}
        unknown = set(outputs) - writable
        if unknown:
            raise EngineError(
                f"activity {activity_id!r} has no write access to {sorted(unknown)!r}"
            )
        if outputs and self.step_outputs_validator is not None:
            try:
                self.step_outputs_validator(outputs)
            except (TypeError, ValueError) as exc:
                raise EngineError(
                    f"activity {activity_id!r} outputs cannot be journaled: {exc}"
                ) from exc
        state = instance.marking.node_state(activity_id)
        if state is NodeState.ACTIVATED:
            self.start_activity(instance, activity_id)
        elif state not in (NodeState.RUNNING, NodeState.SUSPENDED):
            raise EngineError(
                f"activity {activity_id!r} cannot be completed from state {state.value!r}"
            )
        iteration = self._iteration_of(instance, activity_id)
        for element, value in outputs.items():
            instance.data.write(element, value, writer=activity_id, iteration=iteration)
        instance.marking.set_node_state(activity_id, NodeState.COMPLETED)
        instance.history.record(
            HistoryEventType.ACTIVITY_COMPLETED,
            activity_id,
            iteration=iteration,
            values=outputs,
        )
        self._emit(EventType.ACTIVITY_COMPLETED, instance, node=activity_id)
        self._advance_after_completion(instance, activity_id, kernel=kernel)
        if self.step_listener is not None:
            self.step_listener("complete", instance, activity_id, outputs, None)

    def outputs_for(
        self, instance: ProcessInstance, activity_id: str, worker: Optional[Worker] = None
    ) -> Dict[str, Any]:
        """Outputs for completing ``activity_id`` the way scripted runs do.

        With a ``worker``, its produced values (filtered to the activity's
        write set); without one, plausible defaults per data type
        (booleans True so loops terminate).  Public so schedulers — the
        worklist manager's ``auto_outputs`` path, the worker pool — share
        exactly the generation :meth:`run_to_completion` uses.
        """
        schema = instance.execution_schema
        node = schema.node(activity_id)
        if worker is not None:
            produced = dict(worker(node, instance.data.values))
            writable = {edge.element for edge in schema.writes_of(activity_id)}
            return {k: v for k, v in produced.items() if k in writable}
        outputs: Dict[str, Any] = {}
        for data_edge in schema.writes_of(activity_id):
            element = schema.data_element(data_edge.element)
            if element.data_type is DataType.BOOLEAN:
                outputs[element.name] = True
            elif element.data_type is DataType.INTEGER:
                outputs[element.name] = 1
            elif element.data_type is DataType.FLOAT:
                outputs[element.name] = 1.0
            elif element.data_type is DataType.DOCUMENT:
                outputs[element.name] = {"produced_by": activity_id}
            else:
                outputs[element.name] = f"{element.name}_by_{activity_id}"
        return outputs

    # ------------------------------------------------------------------ #
    # marking propagation (the heart of the engine)
    # ------------------------------------------------------------------ #

    def propagate(self, instance: ProcessInstance) -> None:
        """Advance the marking until no further automatic step is possible.

        Three implementations share byte-identical semantics (markings,
        events, event order):

        * the **compiled kernel** (default): per-node closures over a
          dense marking view, driven by a worklist — only nodes whose
          in-edges changed are re-examined;
        * the **interpreted** per-spec loop (compiled stepping disabled):
          full node scan per round against the marking dicts — the PR-2
          baseline the parity suite pins the kernel against;
        * the **edge-scan** loop (indexing disabled): the original
          pre-index implementation.
        """
        if indexing_enabled() and compiled_stepping_enabled():
            kernel = instance.execution_schema.index.step_kernel()
            self._propagate_kernel(instance, kernel, seeds=None)
        else:
            self._propagate_interpreted(instance)

    def _propagate_interpreted(self, instance: ProcessInstance) -> None:
        """Fixpoint propagation by full node scans (non-compiled modes)."""
        schema = instance.execution_schema
        # the index compiles once and is shared by every round below; with
        # indexing disabled the entry decisions run the pre-index edge
        # scans instead (benchmarks and parity tests)
        if indexing_enabled():
            index = schema.index
            specs = index.entry_specs()
            node_list = index.node_ids
            bound = (
                self.max_propagation_rounds
                if self.max_propagation_rounds is not None
                else index.propagation_round_bound()
            )
        else:
            specs = None
            node_list = schema.node_ids()
            bound = (
                self.max_propagation_rounds
                if self.max_propagation_rounds is not None
                else self._scan_round_bound(schema)
            )
        not_activated = NodeState.NOT_ACTIVATED
        changed_nodes: List[str] = []
        for _ in range(bound):
            changed_nodes = []
            # re-read both dicts per round: loop resets and structural
            # execution mutate them through the marking in place
            node_states = instance.marking.node_states
            edge_states = instance.marking.edge_states
            for node_id in node_list:
                if node_states.get(node_id, not_activated) is not not_activated:
                    continue
                if specs is not None:
                    decision = _decide_entry(specs[node_id], edge_states)
                else:
                    decision = self._entry_decision(instance, None, node_id)
                if decision is None:
                    continue
                if decision == "activate":
                    node = schema.node(node_id)
                    if node.is_activity:
                        instance.marking.set_node_state(node_id, NodeState.ACTIVATED)
                        self._emit(EventType.ACTIVITY_ACTIVATED, instance, node=node_id)
                    else:
                        self._execute_structural(instance, node)
                    changed_nodes.append(node_id)
                elif decision == "conflict":
                    raise self._join_conflict(instance, node_id)
                else:
                    self._skip_node(instance, node_id)
                    changed_nodes.append(node_id)
            if not changed_nodes:
                return
        raise PropagationLimitError(instance.instance_id, bound, changed_nodes)

    def _propagate_kernel(
        self,
        instance: ProcessInstance,
        kernel: StepKernel,
        seeds: Optional[List[str]] = None,
    ) -> None:
        """Worklist propagation through the compiled stepping kernel.

        ``seeds`` — node ids whose in-edges changed since the marking was
        last at fixpoint; ``None`` re-examines every untouched node (full
        propagation, e.g. after migration or ad-hoc change).

        The worklist replays the interpreted scan order exactly: within a
        round, candidate positions are processed in ascending index
        order; a node touched at position ``p`` joins the current round
        when its position is > ``p`` (the scan has not passed it yet),
        otherwise the next round.  This keeps the emitted event stream
        byte-identical to the per-round full scans.
        """
        schema = instance.execution_schema
        # Debug-mode stale-kernel guard: a kernel compiled for a previous
        # schema generation must never drive a marking of the current one
        # (positions may have shifted; decisions would be garbage).
        assert kernel.layout.generation == schema.generation, (
            f"stale step kernel: compiled for generation {kernel.layout.generation} "
            f"of schema {kernel.layout.schema_id!r}, but instance "
            f"{instance.instance_id!r} executes generation {schema.generation}"
        )
        marking = instance.marking
        view = marking.dense_view(kernel.layout)
        if view.stale:  # structural marking mutation since the view was built
            view = marking.dense_view(kernel.layout)
        deciders = kernel.deciders
        node_ids = kernel.node_ids
        is_activity = kernel.is_activity
        node_pos = kernel.layout.node_pos
        edge_values = view.edge_values
        untouched = view.untouched
        node_count = len(node_ids)

        if seeds is None:
            current = [p for p in range(node_count) if untouched[p]]
        else:
            current = sorted({node_pos[n] for n in seeds if n in node_pos})
        heapify(current)

        bound = (
            self.max_propagation_rounds
            if self.max_propagation_rounds is not None
            else kernel.round_bound
        )
        sink: List[str] = []
        outer = self._touch_sink
        previous_sink = getattr(outer, "nodes", None)
        outer.nodes = sink
        try:
            rounds = 0
            while current:
                rounds += 1
                if rounds > bound:
                    raise PropagationLimitError(
                        instance.instance_id, rounds - 1, [node_ids[p] for p in set(current)]
                    )
                next_round: Set[int] = set()
                while current:
                    p = heappop(current)
                    if not untouched[p]:
                        continue
                    decision = deciders[p](edge_values)
                    if decision == 0:
                        continue
                    del sink[:]
                    if decision == 1:
                        if is_activity[p]:
                            node_id = node_ids[p]
                            marking.set_node_state(node_id, NodeState.ACTIVATED)
                            self._emit(EventType.ACTIVITY_ACTIVATED, instance, node=node_id)
                        else:
                            self._execute_structural_kernel(instance, p, kernel, marking, sink)
                    elif decision == 2:
                        self._skip_node_kernel(instance, p, kernel, marking, sink)
                    else:
                        raise self._join_conflict(instance, node_ids[p])
                    if view is not marking.dense_view(kernel.layout):
                        # structural marking mutation mid-propagation (should
                        # not happen during normal stepping): restart dense
                        view = marking.dense_view(kernel.layout)
                        edge_values = view.edge_values
                        untouched = view.untouched
                    for touched_id in sink:
                        tp = node_pos.get(touched_id)
                        if tp is None:
                            continue
                        if tp > p:
                            heappush(current, tp)
                        else:
                            next_round.add(tp)
                # a sorted list is a valid heap
                current = sorted(next_round)
            view.at_fixpoint = True
        finally:
            outer.nodes = previous_sink

    def _signal_kernel(
        self,
        marking: Marking,
        p: int,
        kernel: StepKernel,
        chosen_target: Optional[str],
        skipped: bool,
        sink: List[str],
    ) -> None:
        """Signal a node's out-edges through the kernel's precompiled lists.

        Same writes as :meth:`_signal_outgoing`, minus the per-call
        schema/index/edge-object traffic: the edge keys and targets were
        resolved at kernel compile time.
        """
        set_key = marking.set_edge_state_key
        if skipped:
            for key, target in kernel.out_control[p]:
                set_key(key, EdgeState.FALSE_SIGNALED)
                sink.append(target)
            for key, target in kernel.out_sync[p]:
                set_key(key, EdgeState.FALSE_SIGNALED)
                sink.append(target)
            return
        for key, target in kernel.out_control[p]:
            if chosen_target is not None and target != chosen_target:
                set_key(key, EdgeState.FALSE_SIGNALED)
            else:
                set_key(key, EdgeState.TRUE_SIGNALED)
            sink.append(target)
        for key, target in kernel.out_sync[p]:
            set_key(key, EdgeState.TRUE_SIGNALED)
            sink.append(target)

    def _execute_structural_kernel(
        self,
        instance: ProcessInstance,
        p: int,
        kernel: StepKernel,
        marking: Marking,
        sink: List[str],
    ) -> None:
        """Kernel-path twin of :meth:`_execute_structural` (same semantics)."""
        kind = kernel.action_kind[p]
        node_id = kernel.node_ids[p]
        if kind == ACTION_XOR_SPLIT:
            marking.set_node_state(node_id, NodeState.COMPLETED)
            chosen = self._choose_branch(instance, instance.execution_schema, node_id)
            self._signal_kernel(marking, p, kernel, chosen, False, sink)
            return
        if kind == ACTION_LOOP_END:
            # loop machinery (condition evaluation, body reset) is shared
            # with the interpreted path; its signals and resets reach the
            # worklist through the installed thread-local sink
            self._execute_loop_end(instance, kernel.nodes[p])
            return
        marking.set_node_state(node_id, NodeState.COMPLETED)
        if kind == ACTION_END:
            instance.status = InstanceStatus.COMPLETED
            self._emit(EventType.INSTANCE_COMPLETED, instance, node=node_id)
            return
        self._signal_kernel(marking, p, kernel, None, False, sink)

    def _skip_node_kernel(
        self,
        instance: ProcessInstance,
        p: int,
        kernel: StepKernel,
        marking: Marking,
        sink: List[str],
    ) -> None:
        """Kernel-path twin of :meth:`_skip_node` (same semantics)."""
        node_id = kernel.node_ids[p]
        marking.set_node_state(node_id, NodeState.SKIPPED)
        self._emit(EventType.ACTIVITY_SKIPPED, instance, node=node_id)
        if kernel.is_activity[p]:
            instance.history.record(
                HistoryEventType.ACTIVITY_SKIPPED,
                node_id,
                iteration=self._iteration_of(instance, node_id),
            )
        if kernel.action_kind[p] == ACTION_END:
            return
        self._signal_kernel(marking, p, kernel, None, True, sink)

    def _scan_round_bound(self, schema: ProcessSchema) -> int:
        """Derived round bound for the index-less scan path (cached)."""
        bound = self._scan_bound_cache.get(id(schema))
        if bound is None:
            bound = scan_round_bound(schema)
            self._scan_bound_cache[id(schema)] = bound
        return bound

    def _join_conflict(self, instance: ProcessInstance, node_id: str) -> JoinSignalConflictError:
        """Build the mixed-signal AND-join error with full edge context."""
        schema = instance.execution_schema
        if indexing_enabled():
            control_edges = schema.index.in_edges(node_id, EdgeType.CONTROL)
        else:
            control_edges = schema.edges_to(node_id, EdgeType.CONTROL)
        marking = instance.marking
        states = ", ".join(
            f"{edge.source}->{edge.target}: {marking.edge_state_key(edge.key).value}"
            for edge in control_edges
        )
        return JoinSignalConflictError(
            f"AND-join {node_id!r} of instance {instance.instance_id!r} received "
            f"mixed branch signals ({states}); the join can neither fire nor be "
            f"skipped — the schema or a migration produced an inconsistent marking"
        )

    def _entry_decision(
        self, instance: ProcessInstance, index: Optional[SchemaIndex], node_id: str
    ) -> Optional[str]:
        """Decide whether a NOT_ACTIVATED node should activate, skip or wait."""
        if index is not None:
            node = index.node(node_id)
            control_edges = index.in_edges(node_id, EdgeType.CONTROL)
            sync_edges = index.in_edges(node_id, EdgeType.SYNC)
        else:
            schema = instance.execution_schema
            node = schema.node(node_id)
            control_edges = schema.edges_to(node_id, EdgeType.CONTROL)
            sync_edges = schema.edges_to(node_id, EdgeType.SYNC)
        if node.node_type is NodeType.START:
            return "activate"
        if not control_edges:
            return None
        marking = instance.marking
        states = [marking.edge_state_key(edge.key) for edge in control_edges]
        sync_states = [marking.edge_state_key(edge.key) for edge in sync_edges]
        all_signaled = all(s.is_signaled for s in states)
        sync_ready = all(s.is_signaled for s in sync_states)
        if node.node_type is NodeType.AND_JOIN:
            if not all_signaled:
                return None
            if all(s is EdgeState.FALSE_SIGNALED for s in states):
                return "skip"
            if all(s is EdgeState.TRUE_SIGNALED for s in states):
                return "activate" if sync_ready else None
            # Mixed TRUE/FALSE signals: the join can never fire nor be skipped.
            # The caller raises JoinSignalConflictError with full edge context.
            return "conflict"
        if node.node_type is NodeType.XOR_JOIN:
            if not all_signaled:
                return None
            if any(s is EdgeState.TRUE_SIGNALED for s in states):
                return "activate" if sync_ready else None
            return "skip"
        # single incoming control edge (activities, splits, loop nodes, end)
        state = states[0]
        if state is EdgeState.TRUE_SIGNALED:
            return "activate" if sync_ready else None
        if state is EdgeState.FALSE_SIGNALED:
            return "skip"
        return None

    def _execute_structural(self, instance: ProcessInstance, node: Node) -> None:
        """Automatically execute a structural node that just became ready."""
        schema = instance.execution_schema
        node_id = node.node_id
        if node.node_type is NodeType.XOR_SPLIT:
            instance.marking.set_node_state(node_id, NodeState.COMPLETED)
            self._signal_outgoing(
                instance, node_id, chosen_target=self._choose_branch(instance, schema, node_id), skipped=False
            )
            return
        if node.node_type is NodeType.LOOP_END:
            self._execute_loop_end(instance, node)
            return
        instance.marking.set_node_state(node_id, NodeState.COMPLETED)
        if node.node_type is NodeType.END:
            instance.status = InstanceStatus.COMPLETED
            self._emit(EventType.INSTANCE_COMPLETED, instance, node=node_id)
            return
        self._signal_outgoing(instance, node_id, chosen_target=None, skipped=False)

    def _choose_branch(
        self, instance: ProcessInstance, schema: ProcessSchema, split_id: str
    ) -> str:
        """Evaluate XOR guards over the current data and pick a branch."""
        edges = (
            schema.index.out_edges(split_id, EdgeType.CONTROL)
            if indexing_enabled()
            else schema.edges_from(split_id, EdgeType.CONTROL)
        )
        default_target: Optional[str] = None
        for edge in edges:
            if edge.guard is None:
                default_target = edge.target
                continue
            try:
                if evaluate_condition(edge.guard, instance.data.values):
                    return edge.target
            except ExpressionError:
                continue
        if default_target is not None:
            return default_target
        # No guard held and no default branch: fall back to the first branch
        # (structural verification warns about this situation at buildtime).
        return edges[0].target

    def _execute_loop_end(self, instance: ProcessInstance, node: Node) -> None:
        schema = instance.execution_schema
        node_id = node.node_id
        loop_start_id = schema.matching_loop_start(node_id)
        loop_edge = schema.edge(node_id, loop_start_id, EdgeType.LOOP)
        loop_start = schema.node(loop_start_id)
        max_iterations = int(loop_start.properties.get("max_iterations", 100))
        iteration = instance.loop_iterations.get(loop_start_id, 0)
        repeat = False
        if loop_edge.loop_condition is not None and iteration + 1 < max_iterations:
            try:
                repeat = evaluate_condition(loop_edge.loop_condition, instance.data.values)
            except ExpressionError:
                repeat = False
        if not repeat:
            instance.marking.set_node_state(node_id, NodeState.COMPLETED)
            self._signal_outgoing(instance, node_id, chosen_target=None, skipped=False)
            return
        self._reset_loop(instance, loop_start_id, node_id)

    def _reset_loop(self, instance: ProcessInstance, loop_start_id: str, loop_end_id: str) -> None:
        """Start a new iteration: reset the loop body and supersede its history."""
        schema = instance.execution_schema
        body = self._loop_body(schema, loop_start_id)
        instance.loop_iterations[loop_start_id] = instance.loop_iterations.get(loop_start_id, 0) + 1
        activities_in_body = [n for n in body if schema.node(n).is_activity]
        instance.history.supersede_activities(activities_in_body)
        reset_nodes = set(body) | {loop_start_id}
        for node_id in reset_nodes:
            instance.marking.set_node_state(node_id, NodeState.NOT_ACTIVATED)
        if indexing_enabled():
            internal = schema.index.loop_internal_edges(loop_start_id)
        else:
            internal = tuple(
                edge
                for edge in schema.edges
                if not edge.is_loop and edge.source in reset_nodes and edge.target in reset_nodes
            )
        for edge in internal:
            instance.marking.set_edge_state_key(edge.key, EdgeState.NOT_SIGNALED)
        sink = getattr(self._touch_sink, "nodes", None)
        if sink is not None:
            # every reset node is untouched again with changed in-edges (or,
            # for the loop start, a still-TRUE in-edge): all need re-deciding
            sink.extend(reset_nodes)
        self._emit(EventType.LOOP_ITERATION, instance, node=loop_start_id)
        instance.history.record(
            HistoryEventType.LOOP_ITERATION_STARTED,
            loop_start_id,
            iteration=instance.loop_iterations[loop_start_id],
        )
        # The incoming control edge of the loop start is still TRUE-signalled,
        # so the next propagation round re-executes the loop start node.

    def _skip_node(self, instance: ProcessInstance, node_id: str) -> None:
        """Dead-path elimination: mark a node skipped and signal FALSE onwards."""
        schema = instance.execution_schema
        instance.marking.set_node_state(node_id, NodeState.SKIPPED)
        self._emit(EventType.ACTIVITY_SKIPPED, instance, node=node_id)
        node = schema.node(node_id)
        if node.is_activity:
            instance.history.record(
                HistoryEventType.ACTIVITY_SKIPPED,
                node_id,
                iteration=self._iteration_of(instance, node_id),
            )
        if node.node_type is NodeType.END:
            return
        self._signal_outgoing(instance, node_id, chosen_target=None, skipped=True)

    def _signal_outgoing(
        self,
        instance: ProcessInstance,
        node_id: str,
        chosen_target: Optional[str],
        skipped: bool,
    ) -> None:
        """Signal all outgoing control and sync edges of a finished node."""
        schema = instance.execution_schema
        if indexing_enabled():
            control_out = schema.index.out_edges(node_id, EdgeType.CONTROL)
            sync_out = schema.index.out_edges(node_id, EdgeType.SYNC)
        else:
            control_out = schema.edges_from(node_id, EdgeType.CONTROL)
            sync_out = schema.edges_from(node_id, EdgeType.SYNC)
        marking = instance.marking
        sink = getattr(self._touch_sink, "nodes", None)
        for edge in control_out:
            if skipped:
                state = EdgeState.FALSE_SIGNALED
            elif chosen_target is not None and edge.target != chosen_target:
                state = EdgeState.FALSE_SIGNALED
            else:
                state = EdgeState.TRUE_SIGNALED
            marking.set_edge_state_key(edge.key, state)
            if sink is not None:
                sink.append(edge.target)
        for edge in sync_out:
            state = EdgeState.FALSE_SIGNALED if skipped else EdgeState.TRUE_SIGNALED
            marking.set_edge_state_key(edge.key, state)
            if sink is not None:
                sink.append(edge.target)

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #

    def _loop_body(self, schema: ProcessSchema, loop_start_id: str) -> Set[str]:
        if indexing_enabled():
            return schema.index.loop_body(loop_start_id)
        key = (id(schema), loop_start_id)
        body = self._loop_body_cache.get(key)
        if body is None:
            body = schema.loop_body(loop_start_id)
            with self._loop_body_cache_lock:
                self._loop_body_cache[key] = body
        return body

    def _iteration_of(self, instance: ProcessInstance, node_id: str) -> int:
        """Iteration counter of the innermost loop containing ``node_id``."""
        schema = instance.execution_schema
        if indexing_enabled():
            loop_start_id = schema.index.innermost_loop_start(node_id)
            if loop_start_id is None:
                return 0
            return instance.loop_iterations.get(loop_start_id, 0)
        best: Optional[Tuple[int, int]] = None  # (body size, iteration)
        for edge in schema.loop_edges():
            loop_start_id = edge.target
            body = self._loop_body(schema, loop_start_id)
            if node_id in body or node_id == loop_start_id:
                size = len(body)
                iteration = instance.loop_iterations.get(loop_start_id, 0)
                if best is None or size < best[0]:
                    best = (size, iteration)
        return best[1] if best is not None else 0

    def _require_active(self, instance: ProcessInstance) -> None:
        if not instance.status.is_active:
            raise EngineError(
                f"instance {instance.instance_id!r} is {instance.status.value} and cannot execute activities"
            )

    def _emit(
        self,
        event_type: EventType,
        instance: ProcessInstance,
        node: Optional[str],
        user: Optional[str] = None,
    ) -> None:
        self.event_log.append(
            EngineEvent(
                event_type=event_type,
                instance_id=instance.instance_id,
                node_id=node,
                user=user,
            )
        )
