"""Node, edge and instance states of the ADEPT2 runtime.

The paper's Fig. 1 legend shows the node states relevant for compliance
(``completed``, ``activated``, ``running``, ``TRUE signaled`` edges);
this module defines the full state model together with the legal state
transitions the engine enforces.
"""

from __future__ import annotations

from enum import Enum
from typing import Dict, FrozenSet, Set


class NodeState(str, Enum):
    """Execution state of a single node within an instance marking."""

    NOT_ACTIVATED = "not_activated"
    ACTIVATED = "activated"
    RUNNING = "running"
    SUSPENDED = "suspended"
    COMPLETED = "completed"
    SKIPPED = "skipped"
    FAILED = "failed"

    @property
    def is_started(self) -> bool:
        """True once work on the node has begun (running or beyond)."""
        return self in (NodeState.RUNNING, NodeState.SUSPENDED, NodeState.COMPLETED, NodeState.FAILED)

    @property
    def is_finished(self) -> bool:
        """True when the node will not execute (again) in this iteration."""
        return self in (NodeState.COMPLETED, NodeState.SKIPPED, NodeState.FAILED)

    @property
    def is_changeable(self) -> bool:
        """True when the node may still be affected by a change.

        Nodes that have not yet been started (and were not skipped) can be
        deleted, re-ordered or preceded by newly inserted activities
        without rewriting history — the key ingredient of the
        per-operation compliance conditions.
        """
        return self in (NodeState.NOT_ACTIVATED, NodeState.ACTIVATED)


class EdgeState(str, Enum):
    """Signalling state of a control or sync edge within a marking."""

    NOT_SIGNALED = "not_signaled"
    TRUE_SIGNALED = "true_signaled"
    FALSE_SIGNALED = "false_signaled"

    @property
    def is_signaled(self) -> bool:
        return self is not EdgeState.NOT_SIGNALED


class InstanceStatus(str, Enum):
    """Lifecycle state of a whole process instance."""

    CREATED = "created"
    RUNNING = "running"
    SUSPENDED = "suspended"
    COMPLETED = "completed"
    ABORTED = "aborted"

    @property
    def is_active(self) -> bool:
        """True while the instance may still execute activities."""
        return self in (InstanceStatus.CREATED, InstanceStatus.RUNNING, InstanceStatus.SUSPENDED)


_NODE_TRANSITIONS: Dict[NodeState, FrozenSet[NodeState]] = {
    NodeState.NOT_ACTIVATED: frozenset({NodeState.ACTIVATED, NodeState.SKIPPED}),
    NodeState.ACTIVATED: frozenset(
        {NodeState.RUNNING, NodeState.COMPLETED, NodeState.SKIPPED, NodeState.NOT_ACTIVATED}
    ),
    NodeState.RUNNING: frozenset({NodeState.SUSPENDED, NodeState.COMPLETED, NodeState.FAILED}),
    NodeState.SUSPENDED: frozenset({NodeState.RUNNING, NodeState.FAILED}),
    NodeState.COMPLETED: frozenset({NodeState.NOT_ACTIVATED}),  # loop reset only
    NodeState.SKIPPED: frozenset({NodeState.NOT_ACTIVATED}),  # loop reset only
    NodeState.FAILED: frozenset({NodeState.NOT_ACTIVATED}),
}


def is_valid_node_transition(current: NodeState, target: NodeState) -> bool:
    """True when the engine may move a node from ``current`` to ``target``."""
    if current is target:
        return True
    return target in _NODE_TRANSITIONS[current]


def allowed_node_transitions(current: NodeState) -> Set[NodeState]:
    """All states reachable from ``current`` in one step."""
    return set(_NODE_TRANSITIONS[current])
