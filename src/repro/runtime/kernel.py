"""The compiled per-schema stepping kernel.

The engine's marking propagation asks one question per node and round:
given the states of the node's incoming control and sync edges, does the
node *activate*, *skip* (dead-path elimination) or *wait*?  The
interpreted answer (:func:`repro.runtime.engine._decide_entry`) re-reads
the marking dict per edge on every round.  This module compiles the
question away: at :class:`~repro.schema.index.SchemaIndex` build time
every node is specialised into a small closure over **dense positions**
— integer offsets into an index-ordered marking array — so the hot-path
entry decision becomes a handful of ``bytearray`` reads with no dict
lookups, no enum traffic and no per-edge objects.

Three pieces:

* :class:`MarkingLayout` — the dense coordinate system of one schema
  generation: node ids and non-loop edge keys in index order plus their
  reverse position maps.  :meth:`repro.runtime.markings.Marking.dense_view`
  materialises a marking against a layout and keeps it coherent with the
  dict representation through every mutator.
* :class:`StepKernel` — the compiled kernel: one decider closure per
  node (by position), the structural metadata the engine needs to act on
  a decision, and the schema-derived propagation round bound.
* the ``compiled_stepping`` switch — parity tests and benchmarks disable
  the kernel to fall back to the interpreted per-spec path
  (:func:`without_compiled_kernel`), exactly like
  :func:`repro.schema.index.without_index` falls back to edge scans.

Decision codes (shared with the dense edge-state encoding):

====  ==========================  =========================
code  as an edge state            as an entry decision
====  ==========================  =========================
0     NOT_SIGNALED                wait
1     TRUE_SIGNALED               activate
2     FALSE_SIGNALED              skip
3     —                           mixed AND-join signals
====  ==========================  =========================

The identity of edge-state codes and decision codes is what makes the
single-incoming-edge case (the overwhelming majority of nodes) literally
branch-free: the decider returns ``edge_values[position]``.

Code 3 is the explicit surfacing of a real bug class: an AND join whose
incoming control edges are all signalled but disagree (some TRUE, some
FALSE) can never fire *and* can never be skipped — the interpreted
engine used to wait forever on such markings with a comment claiming
they "cannot happen".  Ill-formed schemas and buggy migrations do
produce them; the engine now raises
:class:`~repro.runtime.engine.JoinSignalConflictError` in every mode.
"""

from __future__ import annotations

import contextlib
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

from repro.runtime.states import EdgeState
from repro.schema.nodes import Node, NodeType

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.schema.graph import ProcessSchema
    from repro.schema.index import SchemaIndex

EdgeKey = Tuple[str, str, str]

# dense edge-state encoding (see the module docstring table)
EDGE_CODE: Dict[EdgeState, int] = {
    EdgeState.NOT_SIGNALED: 0,
    EdgeState.TRUE_SIGNALED: 1,
    EdgeState.FALSE_SIGNALED: 2,
}

#: Decision codes returned by compiled deciders.
DECIDE_WAIT = 0
DECIDE_ACTIVATE = 1
DECIDE_SKIP = 2
DECIDE_CONFLICT = 3

#: Action dispatch codes (``StepKernel.action_kind``): what the engine
#: does with a node whose entry decision said "activate".
ACTION_ACTIVITY = 0
ACTION_XOR_SPLIT = 1
ACTION_LOOP_END = 2
ACTION_END = 3
ACTION_STRUCTURAL = 4

#: Legacy engine-wide round cap; the schema-derived bound never goes
#: below it so existing deep-loop schemas keep converging.
LEGACY_ROUND_BOUND = 10000


# ---------------------------------------------------------------------- #
# global switch (benchmarks / parity tests)
# ---------------------------------------------------------------------- #

_COMPILED_STEPPING = True


def compiled_stepping_enabled() -> bool:
    """True when the engine propagates markings through compiled kernels."""
    return _COMPILED_STEPPING


def set_compiled_stepping(enabled: bool) -> None:
    """Globally enable or disable the compiled stepping kernel."""
    global _COMPILED_STEPPING
    _COMPILED_STEPPING = bool(enabled)


@contextlib.contextmanager
def without_compiled_kernel():
    """Context manager: temporarily propagate via the interpreted path.

    With indexing still enabled this selects the per-spec interpreted
    loop (the PR-2 baseline); combined with
    :func:`repro.schema.index.without_index` it selects the original
    edge-scan path.  Parity tests run all three.
    """
    global _COMPILED_STEPPING
    previous = _COMPILED_STEPPING
    _COMPILED_STEPPING = False
    try:
        yield
    finally:
        _COMPILED_STEPPING = previous


# ---------------------------------------------------------------------- #
# the dense coordinate system
# ---------------------------------------------------------------------- #


class MarkingLayout:
    """Dense, index-ordered coordinates of one schema generation.

    Node positions follow ``SchemaIndex.node_ids`` and edge positions
    follow ``SchemaIndex.non_loop_edge_keys()`` — the same positional
    order ``Marking.initial`` inserts and the PR-5 migration fingerprint
    projects, so every dense consumer shares one layout per schema
    generation.
    """

    __slots__ = ("schema_id", "generation", "node_ids", "edge_keys", "node_pos", "edge_pos")

    def __init__(
        self,
        schema_id: str,
        generation: int,
        node_ids: Tuple[str, ...],
        edge_keys: Tuple[EdgeKey, ...],
    ) -> None:
        self.schema_id = schema_id
        self.generation = generation
        self.node_ids = node_ids
        self.edge_keys = edge_keys
        self.node_pos: Dict[str, int] = {node_id: i for i, node_id in enumerate(node_ids)}
        self.edge_pos: Dict[EdgeKey, int] = {key: i for i, key in enumerate(edge_keys)}

    def __repr__(self) -> str:
        return (
            f"MarkingLayout({self.schema_id!r}, generation={self.generation}, "
            f"nodes={len(self.node_ids)}, edges={len(self.edge_keys)})"
        )


# ---------------------------------------------------------------------- #
# decider compilation
# ---------------------------------------------------------------------- #

Decider = Callable[[bytearray], int]


def _compile_decider(
    kind: int,
    control_positions: Tuple[int, ...],
    sync_positions: Tuple[int, ...],
) -> Decider:
    """Specialise one node's entry decision against its dense positions.

    The returned closure reads only the dense edge-state array; all
    structural facts (node kind, edge positions, arity) are baked in at
    compile time.  Semantics mirror the interpreted
    ``ProcessEngine._entry_decision`` case by case.
    """
    # entry-spec kinds, mirroring SchemaIndex.ENTRY_*
    if kind == 0:  # START — always ready
        return lambda edge_values: 1
    if not control_positions:  # unreachable node fragment: never fires
        return lambda edge_values: 0

    if kind == 3:  # single incoming control edge (the overwhelming majority)
        position = control_positions[0]
        if not sync_positions:
            # branch-free: the edge-state code IS the decision code
            return lambda edge_values, p=position: edge_values[p]

        def decide_single_synced(
            edge_values: bytearray, p: int = position, sync: Tuple[int, ...] = sync_positions
        ) -> int:
            value = edge_values[p]
            if value == 1:
                for s in sync:
                    if not edge_values[s]:
                        return 0
                return 1
            return value  # 2 skips regardless of sync, 0 waits

        return decide_single_synced

    if kind == 1:  # AND join

        def decide_and(
            edge_values: bytearray,
            control: Tuple[int, ...] = control_positions,
            sync: Tuple[int, ...] = sync_positions,
        ) -> int:
            low = 3
            high = 0
            for p in control:
                value = edge_values[p]
                if value == 0:
                    return 0  # some branch still unsignalled: wait
                if value < low:
                    low = value
                if value > high:
                    high = value
            if low != high:
                return 3  # mixed TRUE/FALSE signals: structurally dead join
            if high == 2:
                return 2  # every branch dead-path-eliminated
            for s in sync:
                if not edge_values[s]:
                    return 0
            return 1

        return decide_and

    # XOR join
    def decide_xor(
        edge_values: bytearray,
        control: Tuple[int, ...] = control_positions,
        sync: Tuple[int, ...] = sync_positions,
    ) -> int:
        any_true = False
        for p in control:
            value = edge_values[p]
            if value == 0:
                return 0
            if value == 1:
                any_true = True
        if not any_true:
            return 2
        for s in sync:
            if not edge_values[s]:
                return 0
        return 1

    return decide_xor


class StepKernel:
    """The compiled stepping kernel of one schema at one generation.

    Everything the marking propagation touches per node is precompiled
    into position-indexed, allocation-free structures:

    * ``deciders[p]`` — the entry-decision closure of the node at
      position ``p`` (reads the dense edge-state array, returns a
      decision code);
    * ``nodes[p]`` / ``node_ids[p]`` — the node object / id for acting
      on a non-wait decision (structural execution, events, history);
    * ``is_activity[p]`` — 1 for activity nodes (activate instead of
      auto-executing);
    * ``successor_positions[p]`` — positions of all control/sync
      successors, the nodes whose entry decision can change when node
      ``p`` signals its outgoing edges (worklist propagation);
    * ``round_bound`` — the schema-derived propagation bound:
      control-flow depth × total loop-iteration budget, floored at the
      legacy engine-wide constant.

    Kernels are cached on the :class:`~repro.schema.index.SchemaIndex`
    and invalidated with it by the schema generation counter; the engine
    additionally rejects a kernel whose generation no longer matches the
    schema (the stale-kernel guard).
    """

    __slots__ = (
        "layout",
        "deciders",
        "nodes",
        "node_ids",
        "is_activity",
        "action_kind",
        "control_in_keys",
        "out_control",
        "out_sync",
        "successor_positions",
        "round_bound",
    )

    def __init__(self, schema: "ProcessSchema", index: "SchemaIndex") -> None:
        from repro.schema.edges import EdgeType

        self.layout = MarkingLayout(
            schema.schema_id,
            index.generation,
            tuple(index.node_ids),
            tuple(index.non_loop_edge_keys()),
        )
        layout = self.layout
        node_count = len(layout.node_ids)
        specs = index.entry_specs()

        deciders: List[Decider] = []
        nodes: List[Node] = []
        is_activity = bytearray(node_count)
        action_kind = bytearray(node_count)
        control_in_keys: List[Tuple[EdgeKey, ...]] = []
        out_control: List[Tuple[Tuple[EdgeKey, str], ...]] = []
        out_sync: List[Tuple[Tuple[EdgeKey, str], ...]] = []
        successor_positions: List[Tuple[int, ...]] = []
        edge_pos = layout.edge_pos
        node_pos = layout.node_pos
        for position, node_id in enumerate(layout.node_ids):
            kind, control_keys, sync_keys = specs[node_id]
            deciders.append(
                _compile_decider(
                    kind,
                    tuple(edge_pos[key] for key in control_keys),
                    tuple(edge_pos[key] for key in sync_keys),
                )
            )
            node = index.node(node_id)
            nodes.append(node)
            is_activity[position] = 1 if node.is_activity else 0
            if node.is_activity:
                action_kind[position] = ACTION_ACTIVITY
            elif node.node_type is NodeType.XOR_SPLIT:
                action_kind[position] = ACTION_XOR_SPLIT
            elif node.node_type is NodeType.LOOP_END:
                action_kind[position] = ACTION_LOOP_END
            elif node.node_type is NodeType.END:
                action_kind[position] = ACTION_END
            else:
                action_kind[position] = ACTION_STRUCTURAL
            control_in_keys.append(control_keys)
            out_control.append(
                tuple(
                    (edge.key, edge.target)
                    for edge in index.out_edges(node_id, EdgeType.CONTROL)
                )
            )
            out_sync.append(
                tuple(
                    (edge.key, edge.target)
                    for edge in index.out_edges(node_id, EdgeType.SYNC)
                )
            )
            successors = {
                node_pos[edge.target]
                for edge in index.out_edges(node_id, EdgeType.CONTROL)
            }
            successors.update(
                node_pos[edge.target] for edge in index.out_edges(node_id, EdgeType.SYNC)
            )
            successor_positions.append(tuple(sorted(successors)))

        self.deciders: Tuple[Decider, ...] = tuple(deciders)
        self.nodes: Tuple[Node, ...] = tuple(nodes)
        self.node_ids: Tuple[str, ...] = layout.node_ids
        self.is_activity = is_activity
        self.action_kind = action_kind
        self.control_in_keys: Tuple[Tuple[EdgeKey, ...], ...] = tuple(control_in_keys)
        self.out_control: Tuple[Tuple[Tuple[EdgeKey, str], ...], ...] = tuple(out_control)
        self.out_sync: Tuple[Tuple[Tuple[EdgeKey, str], ...], ...] = tuple(out_sync)
        self.successor_positions: Tuple[Tuple[int, ...], ...] = tuple(successor_positions)
        self.round_bound = index.propagation_round_bound()

    def __repr__(self) -> str:
        return f"StepKernel({self.layout!r}, round_bound={self.round_bound})"


def _control_depth(index: "SchemaIndex") -> int:
    """Longest control-flow chain of the schema (its topological depth)."""
    from repro.schema.edges import EdgeType
    from repro.schema.graph import SchemaError

    try:
        order = index.topological_order(include_sync=True)
    except SchemaError:
        # a cyclic (ill-formed) schema has no topo order; fall back to the
        # node count so the bound stays defined and the engine can still
        # report non-convergence with diagnostics instead of spinning
        return len(index.node_ids)
    depth: Dict[str, int] = {}
    for node_id in order:
        best = 0
        for edge in index.in_edges(node_id, EdgeType.CONTROL):
            d = depth.get(edge.source, 0)
            if d > best:
                best = d
        for edge in index.in_edges(node_id, EdgeType.SYNC):
            d = depth.get(edge.source, 0)
            if d > best:
                best = d
        depth[node_id] = best + 1
    return max(depth.values(), default=1)


def _loop_budget(loop_edges, node_source) -> int:
    """Total loop-iteration budget: sum of every loop's max_iterations."""
    budget = 0
    for edge in loop_edges:
        loop_start = node_source.node(edge.target)
        budget += int(loop_start.properties.get("max_iterations", 100))
    return budget


def derive_round_bound(node_count: int, depth: int, loop_budget: int) -> int:
    """The schema-derived propagation round bound.

    Each "era" between loop-backs needs at most ``depth + 1`` rounds (one
    per level of the control DAG plus the final no-change round), and the
    loop-iteration budget bounds how many eras a run can open.  The
    legacy engine-wide constant stays as a floor so schemas that
    converged before keep converging.
    """
    derived = (depth + 2) * (loop_budget + 1) + node_count
    return max(LEGACY_ROUND_BOUND, derived)


def scan_round_bound(schema: "ProcessSchema") -> int:
    """Round bound for the index-less scan path, derived by edge scans."""
    loop_budget = _loop_budget(schema.loop_edges(), schema)
    return derive_round_bound(
        node_count=len(schema), depth=len(schema), loop_budget=loop_budget
    )


__all__ = [
    "DECIDE_ACTIVATE",
    "DECIDE_CONFLICT",
    "DECIDE_SKIP",
    "DECIDE_WAIT",
    "EDGE_CODE",
    "MarkingLayout",
    "StepKernel",
    "compiled_stepping_enabled",
    "derive_round_bound",
    "scan_round_bound",
    "set_compiled_stepping",
    "without_compiled_kernel",
]
