"""Execution histories (traces) of process instances.

The compliance criterion of the paper is "based on a relaxed notion of
trace equivalence ... and works correctly in connection with loop backs".
The execution history records one entry per activity start and completion
(with the data values read and written and the loop iteration it belongs
to).  The *reduced* history discards entries of superseded loop
iterations — exactly the relaxation that makes the criterion practical
for looping processes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple


class HistoryEventType(str, Enum):
    """Kinds of history entries."""

    ACTIVITY_STARTED = "activity_started"
    ACTIVITY_COMPLETED = "activity_completed"
    ACTIVITY_SKIPPED = "activity_skipped"
    ACTIVITY_COMPENSATED = "activity_compensated"
    LOOP_ITERATION_STARTED = "loop_iteration_started"


@dataclass(frozen=True)
class HistoryEntry:
    """One event of an instance's execution history.

    Attributes:
        sequence: Monotonically increasing position within the history.
        event: Kind of event.
        activity: Node id the event refers to.
        iteration: Loop iteration counter of the innermost enclosing loop
            (0 outside loops and for the first iteration).
        values: Data values read (on start) or written (on completion).
        user: User who performed the activity, if any.
        superseded: True when a later loop iteration replaced this entry;
            superseded entries are dropped from the reduced history.
        timestamp: Logical timestamp (monotonic counter of the engine).
    """

    sequence: int
    event: HistoryEventType
    activity: str
    iteration: int = 0
    values: Mapping[str, Any] = field(default_factory=dict)
    user: Optional[str] = None
    superseded: bool = False
    timestamp: int = 0

    def mark_superseded(self) -> "HistoryEntry":
        """A copy of this entry flagged as belonging to an old iteration."""
        return HistoryEntry(
            sequence=self.sequence,
            event=self.event,
            activity=self.activity,
            iteration=self.iteration,
            values=self.values,
            user=self.user,
            superseded=True,
            timestamp=self.timestamp,
        )

    def to_dict(self) -> dict:
        return {
            "sequence": self.sequence,
            "event": self.event.value,
            "activity": self.activity,
            "iteration": self.iteration,
            "values": dict(self.values),
            "user": self.user,
            "superseded": self.superseded,
            "timestamp": self.timestamp,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "HistoryEntry":
        return cls(
            sequence=payload["sequence"],
            event=HistoryEventType(payload["event"]),
            activity=payload["activity"],
            iteration=payload.get("iteration", 0),
            values=dict(payload.get("values", {})),
            user=payload.get("user"),
            superseded=payload.get("superseded", False),
            timestamp=payload.get("timestamp", 0),
        )


class ExecutionHistory:
    """Ordered log of the events an instance produced so far."""

    def __init__(self, entries: Optional[Iterable[HistoryEntry]] = None) -> None:
        self._entries: List[HistoryEntry] = list(entries or [])

    # ------------------------------------------------------------------ #
    # recording
    # ------------------------------------------------------------------ #

    def record(
        self,
        event: HistoryEventType,
        activity: str,
        iteration: int = 0,
        values: Optional[Mapping[str, Any]] = None,
        user: Optional[str] = None,
    ) -> HistoryEntry:
        """Append a new entry and return it."""
        entry = HistoryEntry(
            sequence=len(self._entries),
            event=event,
            activity=activity,
            iteration=iteration,
            values=dict(values or {}),
            user=user,
            timestamp=len(self._entries),
        )
        self._entries.append(entry)
        return entry

    def supersede_activities(self, activities: Iterable[str]) -> int:
        """Flag all existing entries of ``activities`` as superseded.

        Called by the engine when a loop starts a new iteration: entries of
        the previous pass through the loop body no longer count for the
        reduced history.  Returns the number of entries flagged.
        """
        targets = set(activities)
        flagged = 0
        for index, entry in enumerate(self._entries):
            if entry.activity in targets and not entry.superseded:
                self._entries[index] = entry.mark_superseded()
                flagged += 1
        return flagged

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #

    @property
    def entries(self) -> List[HistoryEntry]:
        """All entries in recording order (full history)."""
        return list(self._entries)

    def reduced(self) -> List[HistoryEntry]:
        """The reduced history: entries of superseded loop iterations removed."""
        return [entry for entry in self._entries if not entry.superseded]

    def entries_for(self, activity: str, reduced: bool = False) -> List[HistoryEntry]:
        """All entries of one activity."""
        source = self.reduced() if reduced else self._entries
        return [entry for entry in source if entry.activity == activity]

    def completed_activities(self, reduced: bool = True) -> List[str]:
        """Activity ids with a completion entry, in completion order."""
        source = self.reduced() if reduced else self._entries
        return [
            entry.activity
            for entry in source
            if entry.event is HistoryEventType.ACTIVITY_COMPLETED
        ]

    def started_activities(self, reduced: bool = True) -> List[str]:
        """Activity ids with a start entry, in start order."""
        source = self.reduced() if reduced else self._entries
        return [
            entry.activity
            for entry in source
            if entry.event is HistoryEventType.ACTIVITY_STARTED
        ]

    def has_entries_for(self, activity: str, reduced: bool = True) -> bool:
        """True when the (reduced) history mentions ``activity``."""
        return bool(self.entries_for(activity, reduced=reduced))

    def written_values(self, element: str) -> List[Any]:
        """Chronological values written to a data element (full history)."""
        values = []
        for entry in self._entries:
            if entry.event is HistoryEventType.ACTIVITY_COMPLETED and element in entry.values:
                values.append(entry.values[element])
        return values

    def last_sequence(self) -> int:
        """Sequence number of the newest entry (-1 when empty)."""
        return self._entries[-1].sequence if self._entries else -1

    # ------------------------------------------------------------------ #
    # copy / serialization
    # ------------------------------------------------------------------ #

    def copy(self) -> "ExecutionHistory":
        return ExecutionHistory(self._entries)

    def to_dict(self) -> dict:
        return {"entries": [entry.to_dict() for entry in self._entries]}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ExecutionHistory":
        return cls(HistoryEntry.from_dict(item) for item in payload.get("entries", []))

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self):
        return iter(self._entries)

    def __repr__(self) -> str:
        return f"ExecutionHistory(entries={len(self._entries)}, reduced={len(self.reduced())})"
