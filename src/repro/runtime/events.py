"""Engine events and the event log.

The engine publishes an event for every relevant state change (instance
created, activity activated/started/completed/skipped, loop iteration,
instance completed, migration performed, ...).  The monitoring component
and the worklist manager subscribe to the log; tests use it to assert
behavioural properties without poking at engine internals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Dict, List, Optional


class EventType(str, Enum):
    """All event kinds the runtime and the change framework emit."""

    INSTANCE_CREATED = "instance_created"
    INSTANCE_COMPLETED = "instance_completed"
    INSTANCE_ABORTED = "instance_aborted"
    ACTIVITY_ACTIVATED = "activity_activated"
    ACTIVITY_STARTED = "activity_started"
    ACTIVITY_COMPLETED = "activity_completed"
    ACTIVITY_SKIPPED = "activity_skipped"
    ACTIVITY_COMPENSATED = "activity_compensated"
    LOOP_ITERATION = "loop_iteration"
    ADHOC_CHANGE_APPLIED = "adhoc_change_applied"
    ADHOC_CHANGE_REJECTED = "adhoc_change_rejected"
    INSTANCE_MIGRATED = "instance_migrated"
    MIGRATION_REJECTED = "migration_rejected"
    SCHEMA_VERSION_RELEASED = "schema_version_released"


@dataclass(frozen=True)
class EngineEvent:
    """One published event."""

    event_type: EventType
    instance_id: Optional[str] = None
    node_id: Optional[str] = None
    user: Optional[str] = None
    details: Optional[str] = None

    def __str__(self) -> str:
        parts = [self.event_type.value]
        if self.instance_id:
            parts.append(f"instance={self.instance_id}")
        if self.node_id:
            parts.append(f"node={self.node_id}")
        if self.user:
            parts.append(f"user={self.user}")
        if self.details:
            parts.append(self.details)
        return " ".join(parts)


Listener = Callable[[EngineEvent], None]


class EventLog:
    """Append-only in-memory event log with listener support.

    :meth:`append` sits on the engine's hot step path and stays lock
    free: ``list.append`` is atomic under the GIL and the listener
    collection is an immutable tuple republished by :meth:`subscribe`,
    so concurrent appenders never observe a half-registered listener.
    Ordering *between* threads is provided by the callers (each instance
    is stepped under its stripe lock; the system bus re-sequences).
    """

    def __init__(self) -> None:
        self._events: List[EngineEvent] = []
        self._listeners: tuple = ()

    def append(self, event: EngineEvent) -> None:
        """Record an event and notify all listeners."""
        self._events.append(event)
        for listener in self._listeners:
            listener(event)

    def subscribe(self, listener: Listener) -> None:
        """Register a callback invoked for every future event."""
        self._listeners = self._listeners + (listener,)

    @property
    def events(self) -> List[EngineEvent]:
        return list(self._events)

    def events_of(self, event_type: EventType, instance_id: Optional[str] = None) -> List[EngineEvent]:
        """Events filtered by type and optionally by instance."""
        return [
            event
            for event in self._events
            if event.event_type is event_type
            and (instance_id is None or event.instance_id == instance_id)
        ]

    def count(self, event_type: EventType) -> int:
        return len(self.events_of(event_type))

    def clear(self) -> None:
        self._events.clear()

    def __len__(self) -> int:
        return len(self._events)
