"""Deadlock analysis of WSM nets.

The paper highlights "the absence of deadlock-causing cycles" as a core
buildtime guarantee and uses exactly this property to reject the
structurally conflicting instance I2 in Fig. 1: combining the instance's
ad-hoc sync edge with the type change's new sync edge would close a cycle
over control and sync edges, so the two activities would wait for each
other forever.

The verifier searches for cycles in the combined control+sync graph (loop
edges excluded, they are the only legal cycles), and additionally checks
that sync edges are used as intended: between concurrent nodes of a
parallel block, never crossing a loop boundary.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.schema.blocks import BlockKind, BlockStructureError, BlockTree
from repro.schema.edges import EdgeType
from repro.schema.graph import ProcessSchema, SchemaError
from repro.schema.index import indexing_enabled
from repro.schema.nodes import NodeType
from repro.verification.report import (
    IssueCode,
    VerificationReport,
    error,
    warning,
)


def find_cycle(schema: ProcessSchema, include_sync: bool = True) -> Optional[List[str]]:
    """Return one cycle of the control(+sync) graph, or ``None``.

    Loop edges are excluded; they form the only intentional cycles of a
    correct WSM net.  The returned list contains the node ids along the
    cycle, starting and ending with the same node.
    """
    if indexing_enabled():
        # consume the compiled per-node adjacency instead of scanning edges;
        # out_edges() preserves global edge-insertion order, so the cycle
        # reported is identical to the scan fallback below
        index = schema.index
        adjacency: Dict[str, List[str]] = {
            node_id: [
                edge.target
                for edge in index.out_edges(node_id)
                if not edge.is_loop and (include_sync or not edge.is_sync)
            ]
            for node_id in index.node_ids
        }
    else:
        adjacency = {node_id: [] for node_id in schema.node_ids()}
        for edge in schema.edges:
            if edge.is_loop:
                continue
            if edge.is_sync and not include_sync:
                continue
            adjacency[edge.source].append(edge.target)

    WHITE, GREY, BLACK = 0, 1, 2
    colour: Dict[str, int] = {node_id: WHITE for node_id in adjacency}
    parent: Dict[str, Optional[str]] = {}

    def visit(start: str) -> Optional[List[str]]:
        stack: List[Tuple[str, int]] = [(start, 0)]
        parent[start] = None
        colour[start] = GREY
        while stack:
            node, index = stack[-1]
            neighbours = adjacency[node]
            if index < len(neighbours):
                stack[-1] = (node, index + 1)
                nxt = neighbours[index]
                if colour[nxt] == WHITE:
                    colour[nxt] = GREY
                    parent[nxt] = node
                    stack.append((nxt, 0))
                elif colour[nxt] == GREY:
                    cycle = [nxt]
                    walker: Optional[str] = node
                    while walker is not None and walker != nxt:
                        cycle.append(walker)
                        walker = parent.get(walker)
                    cycle.append(nxt)
                    cycle.reverse()
                    return cycle
            else:
                colour[node] = BLACK
                stack.pop()
        return None

    for node_id in adjacency:
        if colour[node_id] == WHITE:
            cycle = visit(node_id)
            if cycle is not None:
                return cycle
    return None


class DeadlockVerifier:
    """Detects deadlock-causing cycles and misplaced sync edges."""

    def verify(self, schema: ProcessSchema) -> VerificationReport:
        """Run all deadlock-related checks and return the findings."""
        report = VerificationReport(schema_id=schema.schema_id)
        control_cycle = find_cycle(schema, include_sync=False)
        if control_cycle is not None:
            report.add(
                error(
                    IssueCode.CONTROL_CYCLE,
                    "control edges form a cycle (only loop edges may close cycles)",
                    nodes=tuple(control_cycle),
                )
            )
            return report
        combined_cycle = find_cycle(schema, include_sync=True)
        if combined_cycle is not None:
            report.add(
                error(
                    IssueCode.SYNC_CYCLE,
                    "sync edges close a deadlock-causing cycle over the control flow",
                    nodes=tuple(combined_cycle),
                )
            )
        self._check_sync_placement(schema, report)
        return report

    def _check_sync_placement(self, schema: ProcessSchema, report: VerificationReport) -> None:
        sync_edges = schema.sync_edges()
        if not sync_edges:
            return
        try:
            tree = schema.index.block_tree() if indexing_enabled() else BlockTree.build(schema)
        except (BlockStructureError, SchemaError):
            tree = None
        loop_blocks = tree.loop_blocks() if tree is not None else []
        for edge in sync_edges:
            if not schema.has_node(edge.source) or not schema.has_node(edge.target):
                report.add(
                    error(
                        IssueCode.DANGLING_EDGE,
                        "sync edge references a missing node",
                        edges=((edge.source, edge.target),),
                    )
                )
                continue
            ordered = schema.control_path_exists(edge.source, edge.target) or schema.control_path_exists(
                edge.target, edge.source
            )
            if ordered:
                report.add(
                    warning(
                        IssueCode.SYNC_WITHIN_BRANCH,
                        "sync edge connects nodes that are already ordered by control edges",
                        edges=((edge.source, edge.target),),
                    )
                )
            for block in loop_blocks:
                inside = block.all_nodes()
                source_in = edge.source in inside
                target_in = edge.target in inside
                if source_in != target_in:
                    report.add(
                        error(
                            IssueCode.SYNC_CROSSES_LOOP,
                            "sync edge crosses a loop boundary",
                            edges=((edge.source, edge.target),),
                        )
                    )
            if tree is not None:
                self._warn_if_source_conditional(schema, tree, edge, report)

    def _warn_if_source_conditional(self, schema, tree, edge, report) -> None:
        """Warn when a sync edge starts inside an XOR branch.

        ADEPT handles this via dead-path elimination (a skipped source
        signals the sync edge), so it is legal — but worth flagging because
        the target then only *waits* in runs that execute the source.
        """
        for block in tree.blocks:
            if block.kind is BlockKind.CONDITIONAL and block.contains(edge.source, include_boundary=False):
                report.add(
                    warning(
                        IssueCode.SYNC_FROM_CONDITIONAL,
                        "sync edge starts inside a conditional branch; the dependency only "
                        "applies in runs that execute the source activity",
                        edges=((edge.source, edge.target),),
                    )
                )
                return
