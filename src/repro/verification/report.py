"""Verification issues and reports.

Every verifier produces :class:`VerificationIssue` objects with a stable
issue code, a severity and the schema elements involved.  A
:class:`VerificationReport` aggregates the issues of one verification run;
a schema is *correct* when the report contains no errors (warnings are
informational, e.g. unused data elements).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Iterable, List, Optional, Sequence, Tuple


class Severity(str, Enum):
    """Severity of a verification finding."""

    ERROR = "error"
    WARNING = "warning"


class IssueCode(str, Enum):
    """Stable identifiers for every kind of verification finding."""

    # structural
    MISSING_START = "missing_start"
    MISSING_END = "missing_end"
    MULTIPLE_START = "multiple_start"
    MULTIPLE_END = "multiple_end"
    UNREACHABLE_NODE = "unreachable_node"
    NO_PATH_TO_END = "no_path_to_end"
    DANGLING_EDGE = "dangling_edge"
    BAD_DEGREE = "bad_degree"
    UNMATCHED_BLOCK = "unmatched_block"
    BLOCK_OVERLAP = "block_overlap"
    BAD_LOOP_EDGE = "bad_loop_edge"
    MISSING_GUARD = "missing_guard"
    DUPLICATE_GUARD_DEFAULT = "duplicate_guard_default"
    # deadlock
    CONTROL_CYCLE = "control_cycle"
    SYNC_CYCLE = "sync_cycle"
    SYNC_WITHIN_BRANCH = "sync_within_branch"
    SYNC_CROSSES_LOOP = "sync_crosses_loop"
    SYNC_FROM_CONDITIONAL = "sync_from_conditional"
    # data flow
    MISSING_INPUT_DATA = "missing_input_data"
    UNWRITTEN_ELEMENT = "unwritten_element"
    UNUSED_ELEMENT = "unused_element"
    PARALLEL_WRITE_CONFLICT = "parallel_write_conflict"
    UNKNOWN_GUARD_ELEMENT = "unknown_guard_element"
    # soundness
    NOT_SOUND = "not_sound"
    DEAD_ACTIVITY = "dead_activity"


@dataclass(frozen=True)
class VerificationIssue:
    """One finding of a verifier.

    Attributes:
        code: Stable identifier of the kind of problem.
        severity: Error (schema rejected) or warning (informational).
        message: Human readable explanation.
        nodes: Node ids involved in the finding.
        edges: Edges involved as ``(source, target)`` pairs.
        element: Data element involved, if any.
    """

    code: IssueCode
    severity: Severity
    message: str
    nodes: Tuple[str, ...] = ()
    edges: Tuple[Tuple[str, str], ...] = ()
    element: Optional[str] = None

    def __str__(self) -> str:
        location = ""
        if self.nodes:
            location = f" [nodes: {', '.join(self.nodes)}]"
        elif self.edges:
            rendered = ", ".join(f"{s}->{t}" for s, t in self.edges)
            location = f" [edges: {rendered}]"
        elif self.element:
            location = f" [data: {self.element}]"
        return f"{self.severity.value.upper()} {self.code.value}: {self.message}{location}"


@dataclass
class VerificationReport:
    """Aggregated findings of one verification run over one schema."""

    schema_id: str
    issues: List[VerificationIssue] = field(default_factory=list)

    def add(self, issue: VerificationIssue) -> None:
        self.issues.append(issue)

    def extend(self, issues: Iterable[VerificationIssue]) -> None:
        self.issues.extend(issues)

    def merge(self, other: "VerificationReport") -> None:
        """Fold another report (for the same schema) into this one."""
        self.issues.extend(other.issues)

    @property
    def errors(self) -> List[VerificationIssue]:
        return [issue for issue in self.issues if issue.severity is Severity.ERROR]

    @property
    def warnings(self) -> List[VerificationIssue]:
        return [issue for issue in self.issues if issue.severity is Severity.WARNING]

    @property
    def is_correct(self) -> bool:
        """True when the schema contains no errors (warnings allowed)."""
        return not self.errors

    def has_issue(self, code: IssueCode) -> bool:
        return any(issue.code is code for issue in self.issues)

    def issues_with(self, code: IssueCode) -> List[VerificationIssue]:
        return [issue for issue in self.issues if issue.code is code]

    def summary(self) -> str:
        """Multi-line human readable summary of all findings."""
        if not self.issues:
            return f"schema {self.schema_id}: correct (no findings)"
        lines = [
            f"schema {self.schema_id}: {len(self.errors)} error(s), {len(self.warnings)} warning(s)"
        ]
        lines.extend(f"  - {issue}" for issue in self.issues)
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.issues)


def error(code: IssueCode, message: str, **kwargs) -> VerificationIssue:
    """Shorthand for constructing an error issue."""
    return VerificationIssue(code=code, severity=Severity.ERROR, message=message, **kwargs)


def warning(code: IssueCode, message: str, **kwargs) -> VerificationIssue:
    """Shorthand for constructing a warning issue."""
    return VerificationIssue(code=code, severity=Severity.WARNING, message=message, **kwargs)
