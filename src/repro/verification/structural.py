"""Structural well-formedness checks for WSM nets.

Checks the static shape of a schema: unique start and end node, node
degree rules per node type, reachability of every node, matched and
properly nested blocks, well-formed loop edges and XOR guards.
"""

from __future__ import annotations

from typing import List

from repro.schema.blocks import BlockStructureError, BlockTree, matching_join
from repro.schema.edges import EdgeType
from repro.schema.graph import ProcessSchema, SchemaError
from repro.schema.index import indexing_enabled
from repro.schema.nodes import NodeType
from repro.verification.report import (
    IssueCode,
    VerificationIssue,
    VerificationReport,
    error,
    warning,
)


class StructuralVerifier:
    """Verifies the static structure of a process schema."""

    def verify(self, schema: ProcessSchema) -> VerificationReport:
        """Run all structural checks and return the findings."""
        report = VerificationReport(schema_id=schema.schema_id)
        self._check_endpoints(schema, report)
        self._check_degrees(schema, report)
        self._check_loop_edges(schema, report)
        self._check_guards(schema, report)
        self._check_reachability(schema, report)
        self._check_blocks(schema, report)
        return report

    # ------------------------------------------------------------------ #

    def _check_endpoints(self, schema: ProcessSchema, report: VerificationReport) -> None:
        starts = [n for n in schema.nodes.values() if n.node_type is NodeType.START]
        ends = [n for n in schema.nodes.values() if n.node_type is NodeType.END]
        if not starts:
            report.add(error(IssueCode.MISSING_START, "schema has no start node"))
        elif len(starts) > 1:
            report.add(
                error(
                    IssueCode.MULTIPLE_START,
                    "schema has more than one start node",
                    nodes=tuple(n.node_id for n in starts),
                )
            )
        if not ends:
            report.add(error(IssueCode.MISSING_END, "schema has no end node"))
        elif len(ends) > 1:
            report.add(
                error(
                    IssueCode.MULTIPLE_END,
                    "schema has more than one end node",
                    nodes=tuple(n.node_id for n in ends),
                )
            )

    def _check_degrees(self, schema: ProcessSchema, report: VerificationReport) -> None:
        for node in schema.nodes.values():
            incoming = len(schema.edges_to(node.node_id, EdgeType.CONTROL))
            outgoing = len(schema.edges_from(node.node_id, EdgeType.CONTROL))
            node_type = node.node_type
            problem = ""
            if node_type is NodeType.START:
                if incoming != 0 or outgoing != 1:
                    problem = f"start node must have 0 incoming / 1 outgoing control edges, has {incoming}/{outgoing}"
            elif node_type is NodeType.END:
                if incoming != 1 or outgoing != 0:
                    problem = f"end node must have 1 incoming / 0 outgoing control edges, has {incoming}/{outgoing}"
            elif node_type in (NodeType.ACTIVITY, NodeType.LOOP_START, NodeType.LOOP_END):
                if incoming != 1 or outgoing != 1:
                    problem = (
                        f"{node_type.value} node must have exactly one incoming and one outgoing "
                        f"control edge, has {incoming}/{outgoing}"
                    )
            elif node_type.is_split:
                if incoming != 1 or outgoing < 2:
                    problem = f"split node must have 1 incoming and >=2 outgoing control edges, has {incoming}/{outgoing}"
            elif node_type.is_join:
                if incoming < 2 or outgoing != 1:
                    problem = f"join node must have >=2 incoming and 1 outgoing control edge, has {incoming}/{outgoing}"
            if problem:
                report.add(error(IssueCode.BAD_DEGREE, problem, nodes=(node.node_id,)))

    def _check_loop_edges(self, schema: ProcessSchema, report: VerificationReport) -> None:
        loop_starts = {n.node_id for n in schema.nodes.values() if n.node_type is NodeType.LOOP_START}
        loop_ends = {n.node_id for n in schema.nodes.values() if n.node_type is NodeType.LOOP_END}
        seen_sources = set()
        seen_targets = set()
        for edge in schema.loop_edges():
            if edge.source not in loop_ends or edge.target not in loop_starts:
                report.add(
                    error(
                        IssueCode.BAD_LOOP_EDGE,
                        "loop edges must run from a loop-end node back to a loop-start node",
                        edges=((edge.source, edge.target),),
                    )
                )
            if edge.loop_condition is None:
                report.add(
                    error(
                        IssueCode.BAD_LOOP_EDGE,
                        "loop edge is missing its loop condition",
                        edges=((edge.source, edge.target),),
                    )
                )
            seen_sources.add(edge.source)
            seen_targets.add(edge.target)
        for loop_start in sorted(loop_starts - seen_targets):
            report.add(
                error(
                    IssueCode.UNMATCHED_BLOCK,
                    "loop-start node has no loop edge pointing back to it",
                    nodes=(loop_start,),
                )
            )
        for loop_end in sorted(loop_ends - seen_sources):
            report.add(
                error(
                    IssueCode.UNMATCHED_BLOCK,
                    "loop-end node has no outgoing loop edge",
                    nodes=(loop_end,),
                )
            )

    def _check_guards(self, schema: ProcessSchema, report: VerificationReport) -> None:
        for node in schema.nodes.values():
            if node.node_type is not NodeType.XOR_SPLIT:
                continue
            branches = schema.edges_from(node.node_id, EdgeType.CONTROL)
            defaults = [e for e in branches if e.guard is None]
            if len(defaults) > 1:
                report.add(
                    error(
                        IssueCode.DUPLICATE_GUARD_DEFAULT,
                        "an XOR split may have at most one unguarded (default) branch",
                        nodes=(node.node_id,),
                    )
                )
            if not defaults and branches:
                report.add(
                    warning(
                        IssueCode.MISSING_GUARD,
                        "XOR split has no default branch; execution blocks if no guard holds",
                        nodes=(node.node_id,),
                    )
                )

    def _check_reachability(self, schema: ProcessSchema, report: VerificationReport) -> None:
        try:
            start_id = schema.start_node().node_id
            end_id = schema.end_node().node_id
        except SchemaError:
            return
        reachable = schema.transitive_successors(start_id, include_sync=False) | {start_id}
        for node_id in schema.node_ids():
            if node_id not in reachable:
                report.add(
                    error(
                        IssueCode.UNREACHABLE_NODE,
                        "node cannot be reached from the start node via control edges",
                        nodes=(node_id,),
                    )
                )
        reaches_end = schema.transitive_predecessors(end_id, include_sync=False) | {end_id}
        for node_id in schema.node_ids():
            if node_id not in reaches_end:
                report.add(
                    error(
                        IssueCode.NO_PATH_TO_END,
                        "node has no control path leading to the end node",
                        nodes=(node_id,),
                    )
                )

    def _check_blocks(self, schema: ProcessSchema, report: VerificationReport) -> None:
        try:
            schema.start_node()
            schema.end_node()
            schema.topological_order(include_sync=False)
        except SchemaError:
            # endpoint or cycle problems are reported elsewhere; block analysis
            # needs an acyclic control graph with unique endpoints.
            return
        for node in schema.nodes.values():
            if not node.node_type.is_split:
                continue
            try:
                if indexing_enabled():
                    schema.index.matching_join(node.node_id)
                else:
                    matching_join(schema, node.node_id)
            except BlockStructureError as exc:
                report.add(
                    error(IssueCode.UNMATCHED_BLOCK, str(exc), nodes=(node.node_id,))
                )
        try:
            tree = schema.index.block_tree() if indexing_enabled() else BlockTree.build(schema)
        except SchemaError:
            # includes BlockStructureError and dangling loop-edge problems,
            # which are reported by the loop-edge checks above
            return
        blocks = [b for b in tree.blocks if b.kind.value != "process"]
        for i, first in enumerate(blocks):
            for second in blocks[i + 1 :]:
                first_nodes = first.all_nodes()
                second_nodes = second.all_nodes()
                overlap = first_nodes & second_nodes
                if not overlap:
                    continue
                nested = first_nodes <= second_nodes or second_nodes <= first_nodes
                boundary_only = overlap <= {first.entry, first.exit, second.entry, second.exit}
                if not nested and not boundary_only:
                    report.add(
                        error(
                            IssueCode.BLOCK_OVERLAP,
                            "blocks overlap without being nested",
                            nodes=(first.entry, second.entry),
                        )
                    )
