"""Behavioural soundness check by bounded state-space exploration.

Structural and deadlock checks are static; this verifier additionally
plays the token game over the schema and explores *every* branching
decision to confirm that

* the end node is reached from every reachable configuration
  ("option to complete"), and
* every activity is executed in at least one run ("no dead activities").

The exploration uses a deliberately independent, simplified execution
semantics — each node is pending, done or skipped, loops are unrolled at
most once, dead XOR branches propagate a "skipped" status — so that it
cross-validates the production runtime engine instead of sharing its
code.  The state space of block-structured schemas is small, but a
configurable cap keeps pathological inputs bounded.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.schema.edges import EdgeType
from repro.schema.graph import ProcessSchema, SchemaError
from repro.schema.nodes import NodeType
from repro.verification.report import (
    IssueCode,
    VerificationReport,
    error,
    warning,
)

PENDING = "pending"
DONE = "done"
SKIPPED = "skipped"

Configuration = Tuple[Tuple[str, str], ...]


class _Topology:
    """Adjacency of one schema, resolved once per soundness exploration."""

    __slots__ = ("node_ids", "node_types", "control_preds", "sync_preds", "control_succs")

    def __init__(self, node_ids, node_types, control_preds, sync_preds, control_succs) -> None:
        self.node_ids = node_ids
        self.node_types = node_types
        self.control_preds = control_preds
        self.sync_preds = sync_preds
        self.control_succs = control_succs


class SoundnessVerifier:
    """Explores all decision outcomes of a schema within a state cap."""

    def __init__(self, max_states: int = 20000) -> None:
        self.max_states = max_states

    def verify(self, schema: ProcessSchema) -> VerificationReport:
        """Run the bounded exploration and report soundness violations."""
        report = VerificationReport(schema_id=schema.schema_id)
        try:
            schema.start_node()
            end_id = schema.end_node().node_id
            schema.topological_order(include_sync=True)
        except SchemaError:
            # Malformed schemas are reported by the other verifiers.
            return report

        node_ids = schema.node_ids()
        # the exploration touches the same adjacency for every explored
        # configuration — resolve it once from the compiled index (or the
        # schema scans when indexing is disabled) instead of per state
        node_types = {node_id: schema.node(node_id).node_type for node_id in node_ids}
        control_preds = {
            node_id: schema.predecessors(node_id, EdgeType.CONTROL) for node_id in node_ids
        }
        sync_preds = {
            node_id: schema.predecessors(node_id, EdgeType.SYNC) for node_id in node_ids
        }
        control_succs = {
            node_id: schema.successors(node_id, EdgeType.CONTROL) for node_id in node_ids
        }
        topology = _Topology(node_ids, node_types, control_preds, sync_preds, control_succs)

        initial: Dict[str, str] = {node_id: PENDING for node_id in node_ids}
        seen: Set[Configuration] = set()
        stack: List[Dict[str, str]] = [initial]
        executed_somewhere: Set[str] = set()
        truncated = False

        while stack:
            if len(seen) >= self.max_states:
                truncated = True
                break
            state = stack.pop()
            key = tuple(sorted(state.items()))
            if key in seen:
                continue
            seen.add(key)
            successors = self._successor_states(topology, state)
            if not successors:
                if state[end_id] != DONE:
                    stuck = sorted(n for n, s in state.items() if s == PENDING)
                    report.add(
                        error(
                            IssueCode.NOT_SOUND,
                            "execution can reach a configuration from which the end node "
                            "is unreachable (deadlock)",
                            nodes=tuple(stuck[:6]),
                        )
                    )
                    return report
                executed_somewhere |= {n for n, s in state.items() if s == DONE}
                continue
            stack.extend(successors)

        if truncated:
            report.add(
                warning(
                    IssueCode.NOT_SOUND,
                    f"state space exceeded {self.max_states} configurations; "
                    "soundness only partially explored",
                )
            )
            return report

        for node in schema.nodes.values():
            if node.is_activity and node.node_id not in executed_somewhere:
                report.add(
                    warning(
                        IssueCode.DEAD_ACTIVITY,
                        f"activity {node.node_id!r} is not executed in any explored run",
                        nodes=(node.node_id,),
                    )
                )
        return report

    # ------------------------------------------------------------------ #

    def _successor_states(
        self, topology: "_Topology", state: Dict[str, str]
    ) -> List[Dict[str, str]]:
        """All configurations reachable by resolving one pending node."""
        successors: List[Dict[str, str]] = []
        for node_id in topology.node_ids:
            if state[node_id] != PENDING:
                continue
            transition = self._transition_for(topology, state, node_id)
            if transition is None:
                continue
            kind = transition
            if kind == "fire" and topology.node_types[node_id] is NodeType.XOR_SPLIT:
                branches = topology.control_succs[node_id]
                for chosen in branches:
                    next_state = dict(state)
                    next_state[node_id] = DONE
                    for branch in branches:
                        if branch != chosen and next_state.get(branch) == PENDING:
                            next_state[branch] = SKIPPED
                    successors.append(next_state)
            else:
                next_state = dict(state)
                next_state[node_id] = DONE if kind == "fire" else SKIPPED
                successors.append(next_state)
        return successors

    def _transition_for(
        self, topology: "_Topology", state: Dict[str, str], node_id: str
    ) -> Optional[str]:
        """How a pending node can be resolved: ``"fire"``, ``"skip"`` or ``None``."""
        node_type = topology.node_types[node_id]
        if node_type is NodeType.START:
            return "fire"
        control_preds = topology.control_preds[node_id]
        sync_preds = topology.sync_preds[node_id]
        if not control_preds:
            return None
        pred_states = [state[p] for p in control_preds]
        if any(s == PENDING for s in pred_states):
            return None
        sync_ready = all(state[p] != PENDING for p in sync_preds)
        if node_type is NodeType.AND_JOIN:
            if all(s == DONE for s in pred_states):
                return "fire" if sync_ready else None
            if all(s == SKIPPED for s in pred_states):
                return "skip"
            # mixed: the join can never fire -> leave pending (deadlock surfaces)
            return None
        if node_type is NodeType.XOR_JOIN:
            if any(s == DONE for s in pred_states):
                return "fire" if sync_ready else None
            return "skip"
        # single incoming control edge
        if pred_states[0] == DONE:
            return "fire" if sync_ready else None
        return "skip"
