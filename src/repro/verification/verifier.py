"""The combined buildtime verifier.

:class:`SchemaVerifier` runs the structural, deadlock, data-flow and
(optionally) soundness checks over a schema and merges the findings into
one report.  It is invoked by the schema builder, by every change
operation before committing a changed schema, and by the schema
repository before releasing a new schema version — mirroring the paper's
statement that schema correctness "constitutes an important prerequisite
for dynamic process changes".
"""

from __future__ import annotations

from typing import Optional

from repro.schema.graph import ProcessSchema
from repro.verification.dataflow import DataFlowVerifier
from repro.verification.deadlock import DeadlockVerifier
from repro.verification.report import VerificationReport
from repro.verification.soundness import SoundnessVerifier
from repro.verification.structural import StructuralVerifier


class SchemaVerifier:
    """Runs every buildtime check over a process schema.

    Args:
        check_soundness: Also run the (more expensive) state-space based
            soundness exploration.  Structural, deadlock and data-flow
            checks always run.
        soundness_max_states: State cap handed to the soundness verifier.
    """

    def __init__(self, check_soundness: bool = False, soundness_max_states: int = 20000) -> None:
        self.structural = StructuralVerifier()
        self.deadlock = DeadlockVerifier()
        self.dataflow = DataFlowVerifier()
        self.check_soundness = check_soundness
        self.soundness = SoundnessVerifier(max_states=soundness_max_states)

    def verify(self, schema: ProcessSchema) -> VerificationReport:
        """Verify ``schema`` and return the merged report."""
        report = VerificationReport(schema_id=schema.schema_id)
        report.merge(self.structural.verify(schema))
        report.merge(self.deadlock.verify(schema))
        report.merge(self.dataflow.verify(schema))
        if self.check_soundness and report.is_correct:
            report.merge(self.soundness.verify(schema))
        return report


def verify_schema(schema: ProcessSchema, check_soundness: bool = False) -> VerificationReport:
    """Convenience wrapper: verify ``schema`` with default settings."""
    return SchemaVerifier(check_soundness=check_soundness).verify(schema)
