"""Buildtime verification of process schemas.

ADEPT2 only accepts schemas that pass a set of formal checks — the paper
calls this "an important prerequisite for dynamic process changes":
structural well-formedness and block structure, absence of
deadlock-causing cycles (in particular those introduced by sync edges),
and data-flow correctness (no activity reads a mandatory input that may
not have been written).  The same verifier re-checks schemas produced by
change operations, which is how ad-hoc and type changes preserve the
buildtime guarantees.
"""

from repro.verification.report import (
    IssueCode,
    Severity,
    VerificationIssue,
    VerificationReport,
)
from repro.verification.structural import StructuralVerifier
from repro.verification.deadlock import DeadlockVerifier
from repro.verification.dataflow import DataFlowVerifier
from repro.verification.soundness import SoundnessVerifier
from repro.verification.verifier import SchemaVerifier, verify_schema

__all__ = [
    "IssueCode",
    "Severity",
    "VerificationIssue",
    "VerificationReport",
    "StructuralVerifier",
    "DeadlockVerifier",
    "DataFlowVerifier",
    "SoundnessVerifier",
    "SchemaVerifier",
    "verify_schema",
]
