"""Data-flow correctness checks for WSM nets.

The paper lists "erroneous data flows" next to deadlocks as the defects
ruled out at buildtime.  The analysis here guarantees that

* every **mandatory read** is preceded by a write of the same data element
  on *every* control path (otherwise an activity could start with missing
  input data — the very problem ad-hoc deletions must not reintroduce);
* every data element referenced by an XOR guard or loop condition is
  definitely written before the decision is evaluated;
* concurrent writers of the same element are reported (lost updates);
* unused or never-written data elements are flagged as warnings.

The "definitely written before node n" sets are computed by a forward
data-flow analysis over the acyclic control graph (loop edges ignored,
which is conservative), intersecting over control predecessors and
including guaranteed sync-edge predecessors.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set

from repro.schema.edges import EdgeType
from repro.schema.graph import ProcessSchema, SchemaError
from repro.schema.index import indexing_enabled
from repro.schema.nodes import NodeType
from repro.verification.report import (
    IssueCode,
    VerificationReport,
    error,
    warning,
)


def expression_identifiers(expression: str) -> Set[str]:
    """Names referenced by a guard or loop-condition expression.

    Uses the Python AST so that ``"score >= 50 and not rejected"`` yields
    ``{"score", "rejected"}``.  Unparseable expressions yield the empty set
    (the runtime will reject them when evaluated).
    """
    try:
        tree = ast.parse(expression, mode="eval")
    except SyntaxError:
        return set()
    return {
        node.id
        for node in ast.walk(tree)
        if isinstance(node, ast.Name) and node.id not in ("True", "False", "None")
    }


def _conditional_interiors(schema: ProcessSchema) -> Set[str]:
    """Node ids lying strictly inside at least one XOR block.

    Such nodes are not guaranteed to execute in every run, so their writes
    only count towards availability along the branch they belong to — never
    via sync edges into other branches.
    """
    from repro.schema.blocks import BlockKind, BlockStructureError, BlockTree

    try:
        tree = schema.index.block_tree() if indexing_enabled() else BlockTree.build(schema)
    except (BlockStructureError, SchemaError):
        return set()
    interiors: Set[str] = set()
    for block in tree.blocks:
        if block.kind is BlockKind.CONDITIONAL:
            interiors |= block.nodes
    return interiors


def written_before(schema: ProcessSchema) -> Dict[str, Set[str]]:
    """For every node, the data elements definitely written before it starts.

    A write performed *by* a node is visible to its successors, not to the
    node itself.  Loop-back edges are ignored (conservative: a value first
    written inside iteration ``k`` is not assumed available at iteration
    ``k`` entry).  At AND joins the branch contributions are united (all
    branches execute); at XOR joins they are intersected (only one branch
    executes).  Writes reaching a node via a sync edge count only when the
    sync source is guaranteed to execute (not inside a conditional block).
    """
    order = schema.topological_order(include_sync=True)
    writes_of: Dict[str, Set[str]] = {
        node_id: {edge.element for edge in schema.writes_of(node_id)}
        for node_id in schema.node_ids()
    }
    conditional_nodes = _conditional_interiors(schema)
    available: Dict[str, Set[str]] = {}
    for node_id in order:
        control_preds = schema.predecessors(node_id, EdgeType.CONTROL)
        sync_preds = schema.predecessors(node_id, EdgeType.SYNC)
        if not control_preds and not sync_preds:
            available[node_id] = set()
            continue
        node_type = schema.node(node_id).node_type
        combined: Optional[Set[str]] = None
        for pred in control_preds:
            incoming = available.get(pred, set()) | writes_of.get(pred, set())
            if combined is None:
                combined = set(incoming)
            elif node_type is NodeType.AND_JOIN:
                combined |= incoming
            else:
                combined &= incoming
        result = combined or set()
        for pred in sync_preds:
            if pred in conditional_nodes:
                continue
            result |= available.get(pred, set()) | writes_of.get(pred, set())
        available[node_id] = result
    return available


class DataFlowVerifier:
    """Verifies the data-flow correctness of a process schema."""

    def verify(self, schema: ProcessSchema) -> VerificationReport:
        """Run all data-flow checks and return the findings."""
        report = VerificationReport(schema_id=schema.schema_id)
        try:
            available = (
                schema.index.written_before() if indexing_enabled() else written_before(schema)
            )
        except SchemaError:
            # A cyclic or endpoint-less schema is reported by the structural
            # and deadlock verifiers; data-flow analysis needs a DAG.
            return report
        self._check_reads(schema, available, report)
        self._check_guards(schema, available, report)
        self._check_parallel_writes(schema, report)
        self._check_element_usage(schema, report)
        return report

    # ------------------------------------------------------------------ #

    def _defaulted(self, schema: ProcessSchema, element: str) -> bool:
        """True when the element carries a default value (always available)."""
        return (
            schema.has_data_element(element)
            and schema.data_element(element).default is not None
        )

    def _check_reads(
        self,
        schema: ProcessSchema,
        available: Dict[str, Set[str]],
        report: VerificationReport,
    ) -> None:
        for data_edge in schema.data_edges:
            if not data_edge.is_read or not data_edge.mandatory:
                continue
            element = data_edge.element
            if element in available.get(data_edge.activity, set()):
                continue
            if self._defaulted(schema, element):
                continue
            report.add(
                error(
                    IssueCode.MISSING_INPUT_DATA,
                    f"activity {data_edge.activity!r} reads {element!r} which is not "
                    "written on every path leading to it",
                    nodes=(data_edge.activity,),
                    element=element,
                )
            )

    def _check_guards(
        self,
        schema: ProcessSchema,
        available: Dict[str, Set[str]],
        report: VerificationReport,
    ) -> None:
        for edge in schema.edges:
            expression = None
            decision_node = None
            if edge.is_control and edge.guard is not None:
                expression = edge.guard
                decision_node = edge.source
            elif edge.is_loop and edge.loop_condition is not None:
                expression = edge.loop_condition
                decision_node = edge.source
            if expression is None or decision_node is None:
                continue
            for name in sorted(expression_identifiers(expression)):
                if not schema.has_data_element(name):
                    report.add(
                        error(
                            IssueCode.UNKNOWN_GUARD_ELEMENT,
                            f"expression {expression!r} references unknown data element {name!r}",
                            nodes=(decision_node,),
                            element=name,
                        )
                    )
                    continue
                visible = available.get(decision_node, set()) | {
                    w.element for w in schema.writes_of(decision_node)
                }
                if name not in visible and not self._defaulted(schema, name):
                    report.add(
                        error(
                            IssueCode.MISSING_INPUT_DATA,
                            f"expression {expression!r} at {decision_node!r} reads {name!r} "
                            "which is not written on every path leading to it",
                            nodes=(decision_node,),
                            element=name,
                        )
                    )

    def _check_parallel_writes(self, schema: ProcessSchema, report: VerificationReport) -> None:
        from repro.schema.blocks import BlockKind, BlockStructureError, BlockTree

        try:
            tree = schema.index.block_tree() if indexing_enabled() else BlockTree.build(schema)
        except (BlockStructureError, SchemaError):
            return
        for element in schema.data_elements:
            writers = schema.writers_of(element)
            for i, first in enumerate(writers):
                for second in writers[i + 1 :]:
                    if not schema.are_parallel(first, second):
                        continue
                    # Unordered writers are a lost-update risk only when they can
                    # really run concurrently, i.e. their smallest common block is
                    # an AND block (XOR branches are mutually exclusive).
                    try:
                        common = tree.minimal_block_containing({first, second})
                    except BlockStructureError:
                        continue
                    if common.kind is not BlockKind.PARALLEL:
                        continue
                    report.add(
                        warning(
                            IssueCode.PARALLEL_WRITE_CONFLICT,
                            f"activities {first!r} and {second!r} may write {element!r} "
                            "concurrently (potential lost update)",
                            nodes=(first, second),
                            element=element,
                        )
                    )

    def _check_element_usage(self, schema: ProcessSchema, report: VerificationReport) -> None:
        guard_names: Set[str] = set()
        for edge in schema.edges:
            if edge.guard:
                guard_names |= expression_identifiers(edge.guard)
            if edge.loop_condition:
                guard_names |= expression_identifiers(edge.loop_condition)
        for element in schema.data_elements:
            readers = schema.readers_of(element)
            writers = schema.writers_of(element)
            used_in_guard = element in guard_names
            if not readers and not used_in_guard:
                report.add(
                    warning(
                        IssueCode.UNUSED_ELEMENT,
                        f"data element {element!r} is never read",
                        element=element,
                    )
                )
            if (readers or used_in_guard) and not writers and not self._defaulted(schema, element):
                report.add(
                    warning(
                        IssueCode.UNWRITTEN_ELEMENT,
                        f"data element {element!r} is read but never written",
                        element=element,
                    )
                )
