"""The paper's online-order migration scenario (Figs. 1 and 3).

This module builds, programmatically, exactly the situation the paper
uses to demonstrate ADEPT2:

* schema ``S`` (online order, version V1),
* the type change ΔT = addActivity(``send_questions``, between
  ``compose_order`` and ``pack_goods``) + insertSyncEdge(``send_questions``
  → ``confirm_order``),
* instance **I1**: unbiased, compose_order finished but pack_goods not yet
  started → compliant, migrates with state adaptation,
* instance **I2**: ad-hoc modified (inserted ``send_brochure`` after
  ``confirm_order`` plus a sync edge ``confirm_order`` → ``compose_order``)
  → ΔT would close a deadlock-causing cycle → structural conflict,
* instance **I3**: unbiased but ``pack_goods`` already executed → state
  conflict,

plus a larger Fig. 3-style population generator (many instances at random
progress, a fraction of them ad-hoc modified like I2).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, TYPE_CHECKING

from repro.core.adhoc import AdHocChanger
from repro.core.changelog import ChangeLog
from repro.core.evolution import ProcessType, TypeChange
from repro.core.operations import InsertSyncEdge, SerialInsertActivity
from repro.runtime.engine import ProcessEngine
from repro.runtime.instance import ProcessInstance
from repro.schema.edges import EdgeType
from repro.schema.graph import ProcessSchema
from repro.schema.nodes import Node
from repro.schema.templates import online_order_process

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.system import AdeptSystem, InstanceHandle, TypeHandle

#: Activities of the online order process in one valid execution order.
ORDER_EXECUTION_SEQUENCE: Tuple[str, ...] = (
    "get_order",
    "collect_data",
    "confirm_order",
    "compose_order",
    "pack_goods",
    "deliver_goods",
)


def order_type_change_v2(from_version: int = 1) -> TypeChange:
    """The paper's ΔT: insert ``send_questions`` and a sync edge to ``confirm_order``."""
    send_questions = Node(
        node_id="send_questions",
        name="send questions",
        staff_assignment="sales",
    )
    return TypeChange.of(
        from_version,
        [
            SerialInsertActivity(activity=send_questions, pred="compose_order", succ="pack_goods"),
            InsertSyncEdge(source="send_questions", target="confirm_order"),
        ],
        comment="V2: clarify open questions with the customer before packing",
    )


def i2_adhoc_bias() -> List:
    """The ad-hoc operations that make instance I2 structurally conflicting.

    ``send_brochure`` is added after ``confirm_order`` and a sync edge
    forces ``compose_order`` to wait for ``confirm_order`` — combined with
    ΔT's sync edge this closes a cycle.
    """
    send_brochure = Node(node_id="send_brochure", name="send brochure", staff_assignment="sales")
    return [
        InsertSyncEdge(source="confirm_order", target="compose_order"),
        SerialInsertActivity(activity=send_brochure, pred="confirm_order", succ=_join_after_confirm()),
    ]


def _join_after_confirm() -> str:
    """The AND-join node id following ``confirm_order`` in the template."""
    schema = online_order_process()
    successors = schema.successors("confirm_order", EdgeType.CONTROL)
    return successors[0]


@dataclass
class Fig1Scenario:
    """The fully built Fig. 1 situation."""

    process_type: ProcessType
    schema_v1: ProcessSchema
    type_change: TypeChange
    engine: ProcessEngine
    i1: ProcessInstance
    i2: ProcessInstance
    i3: ProcessInstance

    @property
    def instances(self) -> List[ProcessInstance]:
        return [self.i1, self.i2, self.i3]


def paper_fig1_scenario(engine: Optional[ProcessEngine] = None) -> Fig1Scenario:
    """Build schema S, ΔT and the three instances I1-I3 of the paper's Fig. 1."""
    engine = engine or ProcessEngine()
    schema = online_order_process()
    process_type = ProcessType("online_order", schema)

    # I1: compose_order done, pack_goods still activated -> compliant
    i1 = engine.create_instance(schema, "I1")
    for activity in ("get_order", "collect_data", "compose_order"):
        engine.complete_activity(i1, activity)

    # I2: ad-hoc modified such that Delta T would close a cycle -> structural conflict
    i2 = engine.create_instance(schema, "I2")
    for activity in ("get_order", "collect_data"):
        engine.complete_activity(i2, activity)
    AdHocChanger(engine).apply(i2, i2_adhoc_bias(), comment="customer asked for brochure first")

    # I3: pack_goods already executed -> state conflict
    i3 = engine.create_instance(schema, "I3")
    for activity in ("get_order", "collect_data", "compose_order", "pack_goods"):
        engine.complete_activity(i3, activity)

    return Fig1Scenario(
        process_type=process_type,
        schema_v1=schema,
        type_change=order_type_change_v2(),
        engine=engine,
        i1=i1,
        i2=i2,
        i3=i3,
    )


@dataclass
class Fig1SystemScenario:
    """The Fig. 1 situation, hosted inside one :class:`AdeptSystem`."""

    system: "AdeptSystem"
    orders: "TypeHandle"
    type_change: TypeChange
    i1: "InstanceHandle"
    i2: "InstanceHandle"
    i3: "InstanceHandle"

    @property
    def instances(self) -> List["InstanceHandle"]:
        return [self.i1, self.i2, self.i3]

    def migrate(self):
        """Run the paper's migration through the façade."""
        return self.orders.evolve(self.type_change, migrate="compliant")


def paper_fig1_system(system: Optional["AdeptSystem"] = None) -> Fig1SystemScenario:
    """The Fig. 1 scenario built entirely through the service façade.

    Deploys the online-order schema into one :class:`AdeptSystem`, starts
    I1–I3 as handle-addressed cases, and applies I2's ad-hoc bias as a
    transactional change set.  ``scenario.migrate()`` reruns the paper's
    migration.
    """
    from repro.system import AdeptSystem

    system = system or AdeptSystem()
    orders = system.deploy(online_order_process())

    i1 = orders.start(case_id="I1")
    for activity in ("get_order", "collect_data", "compose_order"):
        i1.complete(activity)

    i2 = orders.start(case_id="I2")
    for activity in ("get_order", "collect_data"):
        i2.complete(activity)
    i2.change(comment="customer asked for brochure first").add(*i2_adhoc_bias()).apply()

    i3 = orders.start(case_id="I3")
    for activity in ("get_order", "collect_data", "compose_order", "pack_goods"):
        i3.complete(activity)

    return Fig1SystemScenario(
        system=system,
        orders=orders,
        type_change=order_type_change_v2(),
        i1=i1,
        i2=i2,
        i3=i3,
    )


def paper_fig3_system(
    instance_count: int = 100,
    biased_fraction: float = 0.1,
    seed: int = 7,
    system: Optional["AdeptSystem"] = None,
) -> Tuple["AdeptSystem", "TypeHandle", List["InstanceHandle"]]:
    """A Fig. 3-style population driven through the service façade.

    Produces exactly the population of :func:`paper_fig3_population` (same
    seed, same RNG sequence) but hosted inside one :class:`AdeptSystem`:
    cases are started and advanced by ID and the I2-style bias is applied
    as a transactional change set.  Evolving the type afterwards is one
    call: ``system.evolve("online_order", order_type_change_v2())``.
    """
    from repro.system import AdeptSystem

    system = system or AdeptSystem()
    rng = random.Random(seed)
    orders = system.deploy(online_order_process())
    cases: List["InstanceHandle"] = []
    for index in range(instance_count):
        case = orders.start(case_id=f"order-{index:05d}")
        progress = rng.randint(0, len(ORDER_EXECUTION_SEQUENCE))
        for activity in ORDER_EXECUTION_SEQUENCE[:progress]:
            case.complete(activity)
        if progress <= 2 and rng.random() < biased_fraction * 2:
            # only instances that have not composed the order yet can receive
            # the I2-style bias (its compliance condition requires that)
            case.change(comment="ad-hoc deviation").add(*i2_adhoc_bias()).try_apply()
        cases.append(case)
    return system, orders, cases


def paper_fig3_population(
    instance_count: int = 100,
    biased_fraction: float = 0.1,
    seed: int = 7,
    engine: Optional[ProcessEngine] = None,
) -> Tuple[ProcessType, ProcessEngine, List[ProcessInstance]]:
    """A Fig. 3-style population: many order instances at random progress.

    A ``biased_fraction`` of the still-early instances receives the I2-style
    ad-hoc modification; instance progress is spread uniformly over the
    activity sequence so the migration report contains migrated instances
    as well as state- and structurally-conflicting ones.
    """
    engine = engine or ProcessEngine()
    rng = random.Random(seed)
    schema = online_order_process()
    process_type = ProcessType("online_order", schema)
    changer = AdHocChanger(engine)
    instances: List[ProcessInstance] = []
    for index in range(instance_count):
        instance = engine.create_instance(schema, f"order-{index:05d}")
        progress = rng.randint(0, len(ORDER_EXECUTION_SEQUENCE))
        for activity in ORDER_EXECUTION_SEQUENCE[:progress]:
            engine.complete_activity(instance, activity)
        if progress <= 2 and rng.random() < biased_fraction * 2:
            # only instances that have not composed the order yet can receive
            # the I2-style bias (its compliance condition requires that)
            changer.try_apply(instance, i2_adhoc_bias(), comment="ad-hoc deviation")
        instances.append(instance)
    return process_type, engine, instances
