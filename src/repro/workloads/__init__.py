"""Workload generation for tests, examples and the benchmark harness.

Random block-structured schema generation, instance population
generation (instances advanced to random progress, a fraction ad-hoc
modified), random change scenarios, and the paper's concrete online-order
migration scenario (Figs. 1 and 3).
"""

from repro.workloads.schema_generator import RandomSchemaGenerator, SchemaGeneratorConfig
from repro.workloads.population import PopulationConfig, PopulationGenerator
from repro.workloads.change_generator import ChangeScenarioGenerator
from repro.workloads.order_process import (
    Fig1SystemScenario,
    order_type_change_v2,
    paper_fig1_scenario,
    paper_fig1_system,
    paper_fig3_population,
    paper_fig3_system,
)

__all__ = [
    "RandomSchemaGenerator",
    "SchemaGeneratorConfig",
    "PopulationGenerator",
    "PopulationConfig",
    "ChangeScenarioGenerator",
    "Fig1SystemScenario",
    "order_type_change_v2",
    "paper_fig1_scenario",
    "paper_fig1_system",
    "paper_fig3_population",
    "paper_fig3_system",
]
