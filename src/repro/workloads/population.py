"""Instance population generation.

The migration and storage benchmarks need hundreds to thousands of
instances of one process type, spread over all execution stages (the
paper's requirement: migrate thousands of instances on-the-fly), with a
configurable fraction of ad-hoc modified ("biased") instances.  The
generator drives the real engine — populations are genuine executions,
not synthetic markings.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Sequence

from repro.core.adhoc import AdHocChanger
from repro.core.operations import ChangeOperation
from repro.runtime.engine import ProcessEngine, Worker
from repro.runtime.instance import ProcessInstance
from repro.schema.graph import ProcessSchema
from repro.workloads.change_generator import ChangeScenarioGenerator


@dataclass
class PopulationConfig:
    """Knobs of the population generator.

    Attributes:
        instance_count: Number of instances to create.
        biased_fraction: Target fraction of instances with ad-hoc changes.
        min_progress: Minimum number of activities each instance completes.
        max_progress: Maximum number of activities each instance completes
            (``None`` = up to the total number of activities).
        seed: Random seed (populations are reproducible).
        id_prefix: Prefix of the generated instance ids.
    """

    instance_count: int = 100
    biased_fraction: float = 0.1
    min_progress: int = 0
    max_progress: Optional[int] = None
    seed: int = 13
    id_prefix: str = "inst"


class PopulationGenerator:
    """Creates populations of running instances on one schema."""

    def __init__(
        self,
        schema: ProcessSchema,
        engine: Optional[ProcessEngine] = None,
        config: Optional[PopulationConfig] = None,
        worker: Optional[Worker] = None,
        system: Optional[Any] = None,
    ) -> None:
        """``system`` routes generation through an :class:`repro.system.AdeptSystem`:

        the population is executed on the system's engine (so its events
        reach the event bus) and every generated instance is adopted by the
        system, i.e. becomes addressable through an instance handle.  The
        schema must already be deployed on the system in that case.
        """
        self.schema = schema
        self.system = system
        if system is not None:
            engine = system.engine
        self.engine = engine or ProcessEngine()
        self.config = config or PopulationConfig()
        self.worker = worker
        self._rng = random.Random(self.config.seed)
        self._changer = AdHocChanger(self.engine)
        self._change_generator = ChangeScenarioGenerator(schema, seed=self.config.seed)

    # ------------------------------------------------------------------ #

    def generate(self) -> List[ProcessInstance]:
        """Create the configured number of instances at random progress."""
        instances: List[ProcessInstance] = []
        activity_total = len(self.schema.activity_ids())
        max_progress = (
            self.config.max_progress if self.config.max_progress is not None else activity_total
        )
        max_progress = min(max_progress, activity_total)
        for index in range(self.config.instance_count):
            instance = self.engine.create_instance(
                self.schema, f"{self.config.id_prefix}-{index:05d}"
            )
            steps = self._rng.randint(self.config.min_progress, max_progress)
            self.engine.advance_instance(instance, steps, worker=self.worker)
            if self._rng.random() < self.config.biased_fraction:
                self._apply_random_bias(instance)
            if self.system is not None:
                self.system.adopt_instance(instance)
            instances.append(instance)
        return instances

    def _apply_random_bias(self, instance: ProcessInstance) -> None:
        """Try a few random ad-hoc changes until one applies cleanly."""
        for _ in range(4):
            operations = self._change_generator.random_adhoc_operations(instance)
            if not operations:
                return
            if self._changer.try_apply(instance, operations, comment="random ad-hoc deviation"):
                return
