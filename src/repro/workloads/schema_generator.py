"""Random generation of block-structured process schemas.

The verification benchmark (A4), the storage benchmark (E2) and the
property-based tests need many structurally diverse but *correct* schemas
of controllable size.  The generator builds them through the
:class:`~repro.schema.builder.SchemaBuilder`, so block structure holds by
construction, and every generated schema passes buildtime verification
(asserted by the tests).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from repro.schema.builder import SchemaBuilder, SequenceBuilder
from repro.schema.data import DataType
from repro.schema.graph import ProcessSchema


@dataclass
class SchemaGeneratorConfig:
    """Knobs of the random schema generator.

    Attributes:
        target_activities: Approximate number of activity nodes to generate.
        parallel_probability: Chance of opening an AND block at each step.
        conditional_probability: Chance of opening an XOR block at each step.
        loop_probability: Chance of opening a loop block at each step.
        max_depth: Maximum block nesting depth.
        max_branches: Maximum number of branches per AND/XOR block.
        data_element_pool: Number of shared data elements activities may use.
        read_probability: Chance that an activity reads a pool element.
        write_probability: Chance that an activity writes a pool element.
        roles: Staff assignments to draw from.
    """

    target_activities: int = 20
    parallel_probability: float = 0.15
    conditional_probability: float = 0.15
    loop_probability: float = 0.08
    max_depth: int = 3
    max_branches: int = 3
    data_element_pool: int = 6
    read_probability: float = 0.3
    write_probability: float = 0.25
    roles: tuple = ("clerk", "sales", "warehouse", "manager", "worker")


class RandomSchemaGenerator:
    """Generates random, verified block-structured schemas."""

    def __init__(self, config: Optional[SchemaGeneratorConfig] = None, seed: int = 42) -> None:
        self.config = config or SchemaGeneratorConfig()
        self._rng = random.Random(seed)
        self._activity_counter = 0
        self._flag_counter = 0

    # ------------------------------------------------------------------ #

    def generate(self, schema_id: str = "random_process") -> ProcessSchema:
        """Build one random schema of roughly the configured size."""
        self._activity_counter = 0
        self._flag_counter = 0
        builder = SchemaBuilder(schema_id, name=schema_id)
        for index in range(self.config.data_element_pool):
            builder.data(f"field_{index}", DataType.STRING, default="")
        self._fill_sequence(builder, budget=self.config.target_activities, depth=0)
        if self._activity_counter == 0:
            self._append_activity(builder)
        return builder.build(validate=True)

    def generate_many(self, count: int, prefix: str = "random") -> List[ProcessSchema]:
        """Generate several schemas with distinct ids."""
        return [self.generate(f"{prefix}_{index:03d}") for index in range(count)]

    # ------------------------------------------------------------------ #

    def _fill_sequence(self, sequence: SequenceBuilder, budget: int, depth: int) -> int:
        """Append roughly ``budget`` activities to ``sequence``; returns the rest."""
        config = self.config
        while budget > 0:
            roll = self._rng.random()
            can_nest = depth < config.max_depth and budget >= 4
            if can_nest and roll < config.parallel_probability:
                budget = self._append_parallel(sequence, budget, depth)
            elif can_nest and roll < config.parallel_probability + config.conditional_probability:
                budget = self._append_conditional(sequence, budget, depth)
            elif (
                can_nest
                and roll
                < config.parallel_probability + config.conditional_probability + config.loop_probability
            ):
                budget = self._append_loop(sequence, budget, depth)
            else:
                self._append_activity(sequence)
                budget -= 1
        return budget

    def _append_activity(self, sequence: SequenceBuilder) -> None:
        config = self.config
        self._activity_counter += 1
        activity_id = f"act_{self._activity_counter:03d}"
        reads = []
        writes = []
        if config.data_element_pool:
            if self._rng.random() < config.write_probability:
                writes.append(f"field_{self._rng.randrange(config.data_element_pool)}")
            if self._rng.random() < config.read_probability:
                reads.append(f"field_{self._rng.randrange(config.data_element_pool)}")
        sequence.activity(
            activity_id,
            role=self._rng.choice(config.roles),
            duration=round(self._rng.uniform(0.5, 4.0), 1),
            reads=tuple(reads),
            writes=tuple(writes),
        )

    def _branch_budgets(self, budget: int, branches: int) -> List[int]:
        base = max(1, budget // (branches + 1))
        return [base for _ in range(branches)]

    def _branch_spec(self, budget: int, depth: int):
        """A branch callable filling its sequence with ``budget`` activities."""

        def spec(sequence: SequenceBuilder) -> None:
            self._fill_sequence(sequence, budget, depth)

        return spec

    def _append_parallel(self, sequence: SequenceBuilder, budget: int, depth: int) -> int:
        branches = self._rng.randint(2, self.config.max_branches)
        budgets = self._branch_budgets(budget, branches)
        specs = [self._branch_spec(branch_budget, depth + 1) for branch_budget in budgets]
        sequence.parallel(specs, label=f"p{self._activity_counter}")
        return budget - sum(budgets)

    def _append_conditional(self, sequence: SequenceBuilder, budget: int, depth: int) -> int:
        branches = self._rng.randint(2, self.config.max_branches)
        budgets = self._branch_budgets(budget, branches)
        self._flag_counter += 1
        flag = f"choice_{self._flag_counter}"
        sequence._parent.data(flag, DataType.BOOLEAN, default=False)
        guarded = [(flag, self._branch_spec(budgets[0], depth + 1))]
        guarded += [(None, self._branch_spec(b, depth + 1)) for b in budgets[1:2]]
        guarded += [
            (f"not {flag}", self._branch_spec(b, depth + 1)) for b in budgets[2:]
        ]
        sequence.conditional(guarded, label=f"c{self._flag_counter}")
        return budget - sum(budgets)

    def _append_loop(self, sequence: SequenceBuilder, budget: int, depth: int) -> int:
        self._flag_counter += 1
        flag = f"exit_{self._flag_counter}"
        sequence._parent.data(flag, DataType.BOOLEAN, default=False)
        body_budget = max(1, min(budget - 1, self._rng.randint(1, 4)))

        def body(seq: SequenceBuilder, budget_for_body=body_budget, exit_flag=flag) -> None:
            remaining = budget_for_body
            while remaining > 1:
                self._append_activity(seq)
                remaining -= 1
            self._activity_counter += 1
            seq.activity(
                f"act_{self._activity_counter:03d}",
                role=self._rng.choice(self.config.roles),
                writes=(exit_flag,),
            )

        sequence.loop(body, condition=f"not {flag}", label=f"l{self._flag_counter}", max_iterations=8)
        return budget - body_budget
