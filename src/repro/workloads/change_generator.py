"""Random (but valid) change scenarios.

Produces random type changes ΔT against a schema and random ad-hoc
operations against a running instance.  Operations are generated and then
validated (preconditions + verification of the changed schema); invalid
candidates are discarded and re-drawn, so callers always receive changes
that at least make structural sense — whether an *instance* is compliant
with them is exactly what the compliance machinery decides.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from repro.core.changelog import ChangeLog
from repro.core.evolution import TypeChange
from repro.core.operations import (
    ChangeActivityAttributes,
    ChangeOperation,
    DeleteActivity,
    InsertSyncEdge,
    OperationError,
    SerialInsertActivity,
)
from repro.runtime.instance import ProcessInstance
from repro.schema.edges import EdgeType
from repro.schema.graph import ProcessSchema, SchemaError
from repro.schema.nodes import Node
from repro.verification.verifier import SchemaVerifier


class ChangeScenarioGenerator:
    """Draws random valid change operations against a schema."""

    def __init__(self, schema: ProcessSchema, seed: int = 99) -> None:
        self.schema = schema
        self._rng = random.Random(seed)
        self._verifier = SchemaVerifier()
        self._counter = 0

    # ------------------------------------------------------------------ #
    # building blocks
    # ------------------------------------------------------------------ #

    def random_serial_insert(self, schema: Optional[ProcessSchema] = None) -> Optional[SerialInsertActivity]:
        """A serial insert into a randomly chosen control edge."""
        schema = schema or self.schema
        control_edges = [edge for edge in schema.control_edges()]
        if not control_edges:
            return None
        edge = self._rng.choice(control_edges)
        self._counter += 1
        activity = Node(node_id=f"inserted_{self._counter:03d}", name=f"inserted {self._counter}")
        return SerialInsertActivity(activity=activity, pred=edge.source, succ=edge.target)

    def random_delete(self, schema: Optional[ProcessSchema] = None) -> Optional[DeleteActivity]:
        """Deletion of a randomly chosen deletable activity."""
        schema = schema or self.schema
        candidates = []
        for activity_id in schema.activity_ids():
            operation = DeleteActivity(activity_id=activity_id)
            if not operation.check_preconditions(schema):
                candidates.append(operation)
        if not candidates:
            return None
        return self._rng.choice(candidates)

    def random_sync_insert(self, schema: Optional[ProcessSchema] = None) -> Optional[InsertSyncEdge]:
        """A sync edge between two randomly chosen parallel activities."""
        schema = schema or self.schema
        activities = schema.activity_ids()
        pairs = []
        for source in activities:
            for target in activities:
                if source == target:
                    continue
                operation = InsertSyncEdge(source=source, target=target)
                if not operation.check_preconditions(schema):
                    pairs.append(operation)
        if not pairs:
            return None
        return self._rng.choice(pairs)

    def random_attribute_change(self, schema: Optional[ProcessSchema] = None) -> Optional[ChangeActivityAttributes]:
        """A role/duration change of a randomly chosen activity."""
        schema = schema or self.schema
        activities = schema.activity_ids()
        if not activities:
            return None
        activity_id = self._rng.choice(activities)
        return ChangeActivityAttributes(
            activity_id=activity_id,
            role=self._rng.choice(("clerk", "manager", "specialist")),
            duration=round(self._rng.uniform(0.5, 5.0), 1),
        )

    # ------------------------------------------------------------------ #
    # composed scenarios
    # ------------------------------------------------------------------ #

    def random_type_change(self, operation_count: int = 2, max_attempts: int = 30) -> TypeChange:
        """A ΔT of ``operation_count`` operations yielding a verified schema."""
        for _ in range(max_attempts):
            operations = self._draw_operations(operation_count)
            if not operations:
                continue
            change_log = ChangeLog(operations)
            try:
                changed = change_log.apply_to(self.schema, check=True)
            except (OperationError, SchemaError):
                continue
            if self._verifier.verify(changed).is_correct:
                return TypeChange(from_version=self.schema.version, operations=change_log)
        # Fall back to the always-valid single serial insert.
        insert = self.random_serial_insert()
        if insert is None:
            raise SchemaError("cannot generate any change operation for this schema")
        return TypeChange(from_version=self.schema.version, operations=ChangeLog([insert]))

    def _draw_operations(self, operation_count: int) -> List[ChangeOperation]:
        operations: List[ChangeOperation] = []
        working = self.schema.copy()
        for _ in range(operation_count):
            kind = self._rng.random()
            operation: Optional[ChangeOperation]
            if kind < 0.5:
                operation = self.random_serial_insert(working)
            elif kind < 0.7:
                operation = self.random_sync_insert(working)
            elif kind < 0.85:
                operation = self.random_delete(working)
            else:
                operation = self.random_attribute_change(working)
            if operation is None:
                continue
            try:
                operation.apply_checked(working)
            except (OperationError, SchemaError):
                continue
            operations.append(operation)
        return operations

    def random_adhoc_operations(self, instance: ProcessInstance) -> List[ChangeOperation]:
        """Operations plausible as an ad-hoc change of ``instance``.

        Prefers inserting a new activity before a not-yet-started activity
        of the instance's execution schema, which is compliant by
        construction for most instance states.
        """
        schema = instance.execution_schema
        not_started = [
            activity_id
            for activity_id in schema.activity_ids()
            if not instance.marking.node_state(activity_id).is_started
        ]
        self._rng.shuffle(not_started)
        for target in not_started:
            predecessors = schema.predecessors(target, EdgeType.CONTROL)
            if not predecessors:
                continue
            self._counter += 1
            activity = Node(
                node_id=f"adhoc_{instance.instance_id}_{self._counter:03d}",
                name=f"ad-hoc step {self._counter}",
            )
            return [SerialInsertActivity(activity=activity, pred=predecessors[0], succ=target)]
        return []
