"""The ADEPT2 change framework — the paper's primary contribution.

This package implements

* the complete set of high-level **change operations** with pre/post
  conditions and per-operation compliance conditions
  (:mod:`repro.core.operations`),
* **change logs** (instance bias) and minimal **substitution blocks**
  (:mod:`repro.core.changelog`, :mod:`repro.core.substitution`),
* the **compliance criterion** based on relaxed trace equivalence plus
  the efficient per-operation checks (:mod:`repro.core.compliance`),
* state-related / structural / semantic **conflict detection** for the
  interplay of concurrent type and instance changes
  (:mod:`repro.core.conflicts`),
* **state adaptation** of markings when instances migrate
  (:mod:`repro.core.state_adaptation`),
* **schema evolution** (process types and versions,
  :mod:`repro.core.evolution`) and the **migration manager** producing
  the paper's migration report (:mod:`repro.core.migration`),
* **ad-hoc changes** of single running instances (:mod:`repro.core.adhoc`).
"""

from repro.core.conflicts import Conflict, ConflictKind
from repro.core.operations import (
    AddDataEdge,
    AddDataElement,
    ChangeActivityAttributes,
    ChangeOperation,
    ConditionalInsertActivity,
    DeleteActivity,
    DeleteDataEdge,
    DeleteDataElement,
    DeleteSyncEdge,
    InsertSyncEdge,
    MoveActivity,
    OperationError,
    ParallelInsertActivity,
    SerialInsertActivity,
    operation_from_dict,
)
from repro.core.changelog import ChangeLog
from repro.core.substitution import SubstitutionBlock
from repro.core.compliance import ComplianceChecker, ComplianceResult
from repro.core.state_adaptation import StateAdapter
from repro.core.evolution import ProcessType, TypeChange
from repro.core.migration import (
    InstanceMigrationResult,
    MigrationManager,
    MigrationOutcome,
    MigrationReport,
)
from repro.core.migration_plan import ClassVerdict, FingerprintCache, MigrationPlan
from repro.core.adhoc import AdHocChangeError, AdHocChanger
from repro.core.rollback import RollbackError, RollbackManager, RollbackPlan, RollbackPlanner

__all__ = [
    "Conflict",
    "ConflictKind",
    "ChangeOperation",
    "OperationError",
    "SerialInsertActivity",
    "ParallelInsertActivity",
    "ConditionalInsertActivity",
    "DeleteActivity",
    "MoveActivity",
    "InsertSyncEdge",
    "DeleteSyncEdge",
    "AddDataElement",
    "DeleteDataElement",
    "AddDataEdge",
    "DeleteDataEdge",
    "ChangeActivityAttributes",
    "operation_from_dict",
    "ChangeLog",
    "SubstitutionBlock",
    "ComplianceChecker",
    "ComplianceResult",
    "StateAdapter",
    "ProcessType",
    "TypeChange",
    "MigrationManager",
    "MigrationOutcome",
    "MigrationReport",
    "MigrationPlan",
    "FingerprintCache",
    "ClassVerdict",
    "InstanceMigrationResult",
    "AdHocChanger",
    "AdHocChangeError",
    "RollbackManager",
    "RollbackPlanner",
    "RollbackPlan",
    "RollbackError",
]
