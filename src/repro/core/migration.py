"""Instance migration: propagating type changes to running instances.

This module implements the paper's migration process (Figs. 1 and 3):
after a type change ΔT has been released as a new schema version, every
running instance of the type is checked and — if possible — migrated
on-the-fly:

* **unbiased** instances are checked against the per-operation compliance
  conditions (or the replay criterion); compliant ones get their marking
  adapted and are re-linked to the new version, non-compliant ones remain
  on the old version and simply keep running (state-related conflict,
  instance I3 in Fig. 1);
* **biased** instances (with ad-hoc modifications) additionally undergo
  semantic-overlap and structural checks: if applying ΔT to their
  instance-specific schema would produce an incorrect schema (e.g. a
  deadlock-causing cycle, instance I2 in Fig. 1) they stay on the old
  version with a structural conflict; otherwise bias and type change are
  combined and the instance migrates while keeping its bias.

The outcome of a migration run is a :class:`MigrationReport` that mirrors
the report of the paper's monitoring component.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence

from repro.core.changelog import ChangeLog
from repro.core.compliance import ComplianceChecker
from repro.core.conflicts import Conflict, ConflictKind, semantic_conflict, structural_conflict
from repro.core.evolution import ProcessType, TypeChange
from repro.core.operations import OperationError
from repro.core.state_adaptation import StateAdapter
from repro.runtime.engine import ProcessEngine
from repro.runtime.events import EngineEvent, EventLog, EventType
from repro.runtime.instance import ProcessInstance
from repro.schema.graph import ProcessSchema, SchemaError
from repro.schema.index import indexing_enabled
from repro.verification.verifier import SchemaVerifier


class MigrationOutcome(str, Enum):
    """Per-instance result of a migration attempt."""

    MIGRATED = "migrated"
    MIGRATED_WITH_BIAS = "migrated_with_bias"
    MIGRATED_WITH_ROLLBACK = "migrated_with_rollback"
    STATE_CONFLICT = "state_conflict"
    STRUCTURAL_CONFLICT = "structural_conflict"
    SEMANTIC_CONFLICT = "semantic_conflict"
    DATA_CONFLICT = "data_conflict"
    FINISHED = "finished"

    @property
    def migrated(self) -> bool:
        return self in (
            MigrationOutcome.MIGRATED,
            MigrationOutcome.MIGRATED_WITH_BIAS,
            MigrationOutcome.MIGRATED_WITH_ROLLBACK,
        )


@dataclass
class InstanceMigrationResult:
    """Result of migrating (or refusing to migrate) one instance."""

    instance_id: str
    outcome: MigrationOutcome
    conflicts: List[Conflict] = field(default_factory=list)
    was_biased: bool = False
    duration_seconds: float = 0.0

    @property
    def migrated(self) -> bool:
        return self.outcome.migrated

    def describe(self) -> str:
        line = f"{self.instance_id}: {self.outcome.value}"
        if self.was_biased:
            line += " (ad-hoc modified)"
        if self.conflicts:
            line += " — " + "; ".join(str(conflict) for conflict in self.conflicts)
        return line


@dataclass
class MigrationReport:
    """Summary of one migration run over all instances of a process type.

    With ``collect_results=False`` (bulk runs over very large
    populations) only the aggregate counters and a bounded sample of
    conflicting results are kept — a 100k-case migration then holds a
    handful of counters instead of 100k result dataclasses.  All counting
    accessors (:meth:`count`, :attr:`total`, :attr:`migrated_count`,
    :meth:`outcome_counts`) work in both modes; the per-instance views
    (:attr:`results`, :attr:`migrated_instances`, …) are only populated
    when results are collected.
    """

    process_type: str
    from_version: int
    to_version: int
    results: List[InstanceMigrationResult] = field(default_factory=list)
    duration_seconds: float = 0.0
    #: keep every per-instance result (default) or only counters + samples
    collect_results: bool = True
    #: bounded detail kept for conflict reporting when results are dropped
    conflict_samples: List[InstanceMigrationResult] = field(default_factory=list)
    conflict_sample_limit: int = 25
    _counts: Dict[str, int] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        # reports constructed with a pre-filled results list stay consistent
        for result in self.results:
            self._counts[result.outcome.value] = self._counts.get(result.outcome.value, 0) + 1

    def add(self, result: InstanceMigrationResult) -> None:
        self._counts[result.outcome.value] = self._counts.get(result.outcome.value, 0) + 1
        if self.collect_results:
            self.results.append(result)
        elif result.conflicts and len(self.conflict_samples) < self.conflict_sample_limit:
            self.conflict_samples.append(result)

    # -- aggregate views -------------------------------------------------- #

    def count(self, outcome: MigrationOutcome) -> int:
        return self._counts.get(outcome.value, 0)

    @property
    def migrated_count(self) -> int:
        return (
            self.count(MigrationOutcome.MIGRATED)
            + self.count(MigrationOutcome.MIGRATED_WITH_BIAS)
            + self.count(MigrationOutcome.MIGRATED_WITH_ROLLBACK)
        )

    @property
    def total(self) -> int:
        return sum(self._counts.values())

    @property
    def migrated_instances(self) -> List[str]:
        return [result.instance_id for result in self.results if result.migrated]

    @property
    def non_compliant_instances(self) -> List[str]:
        return [
            result.instance_id
            for result in self.results
            if not result.migrated and result.outcome is not MigrationOutcome.FINISHED
        ]

    def outcome_counts(self) -> Dict[str, int]:
        """Mapping of outcome name to count (the report's headline numbers)."""
        return {outcome.value: self.count(outcome) for outcome in MigrationOutcome}

    def results_by_outcome(self, outcome: MigrationOutcome) -> List[InstanceMigrationResult]:
        return [result for result in self.results if result.outcome is outcome]

    def summary(self) -> str:
        """Human readable report akin to the paper's monitoring component."""
        lines = [
            f"Migration report: {self.process_type} v{self.from_version} -> v{self.to_version}",
            f"  instances checked:        {self.total}",
            f"  migrated:                 {self.migrated_count}"
            f" ({self.count(MigrationOutcome.MIGRATED)} unbiased,"
            f" {self.count(MigrationOutcome.MIGRATED_WITH_BIAS)} with bias,"
            f" {self.count(MigrationOutcome.MIGRATED_WITH_ROLLBACK)} after rollback)",
            f"  state conflicts:          {self.count(MigrationOutcome.STATE_CONFLICT)}",
            f"  structural conflicts:     {self.count(MigrationOutcome.STRUCTURAL_CONFLICT)}",
            f"  semantic conflicts:       {self.count(MigrationOutcome.SEMANTIC_CONFLICT)}",
            f"  data conflicts:           {self.count(MigrationOutcome.DATA_CONFLICT)}",
            f"  already finished:         {self.count(MigrationOutcome.FINISHED)}",
            f"  duration:                 {self.duration_seconds:.3f}s",
        ]
        detail_source = self.results if self.collect_results else self.conflict_samples
        conflicting = [result for result in detail_source if result.conflicts]
        if conflicting:
            header = "  conflict details:" if self.collect_results else (
                f"  conflict details (first {len(conflicting)}):"
            )
            lines.append(header)
            for result in conflicting:
                lines.append(f"    - {result.describe()}")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        payload = {
            "process_type": self.process_type,
            "from_version": self.from_version,
            "to_version": self.to_version,
            "duration_seconds": self.duration_seconds,
            "outcomes": self.outcome_counts(),
            "results": [
                {
                    "instance_id": result.instance_id,
                    "outcome": result.outcome.value,
                    "was_biased": result.was_biased,
                    "conflicts": [str(conflict) for conflict in result.conflicts],
                }
                for result in self.results
            ],
        }
        if not self.collect_results:
            payload["collect_results"] = False
            payload["conflict_samples"] = [
                {
                    "instance_id": result.instance_id,
                    "outcome": result.outcome.value,
                    "conflicts": [str(conflict) for conflict in result.conflicts],
                }
                for result in self.conflict_samples
            ]
        return payload


class MigrationManager:
    """Checks compliance and migrates running instances to a new schema version."""

    def __init__(
        self,
        engine: Optional[ProcessEngine] = None,
        compliance_method: str = "conditions",
        event_log: Optional[EventLog] = None,
        rollback_on_state_conflict: bool = False,
    ) -> None:
        self.engine = engine or ProcessEngine()
        self.compliance_method = compliance_method
        self.event_log = event_log if event_log is not None else self.engine.event_log
        self.checker = ComplianceChecker(engine=ProcessEngine())
        self.adapter = StateAdapter(engine=ProcessEngine())
        self.verifier = SchemaVerifier()
        #: optional policy: compensate the blocking activities of state-conflicting
        #: unbiased instances and migrate them anyway (see repro.core.rollback)
        self.rollback_on_state_conflict = rollback_on_state_conflict

    # ------------------------------------------------------------------ #
    # whole-type migration
    # ------------------------------------------------------------------ #

    def migrate_type(
        self,
        process_type: ProcessType,
        type_change: TypeChange,
        instances: Iterable[ProcessInstance],
        release: bool = True,
        memoize: bool = False,
        collect_results: bool = True,
        parallel: int = 0,
        plan: Optional["MigrationPlan"] = None,
        cache: Optional["FingerprintCache"] = None,
        job_context: Optional[Callable[[], Any]] = None,
    ) -> MigrationReport:
        """Release ΔT as a new version and migrate all given instances.

        With ``release=False`` the new version must already have been
        released (e.g. by a previous call) and is looked up instead.

        ``memoize=True`` switches to the bulk path: the change is
        compiled once into a :class:`~repro.core.migration_plan.
        MigrationPlan` and unbiased instances share one verdict and one
        adapted-marking template per compliance fingerprint class; the
        non-shareable residue (biased instances, rollback attempts) runs
        the classic per-instance path — optionally fanned over
        ``parallel`` threads.  Reports are identical to the unmemoized
        run (property-tested).  ``collect_results=False`` keeps only
        counters and a bounded conflict sample (large populations).
        ``plan``/``cache`` allow the caller to reuse a compiled plan and
        verdict cache across batches of one evolution.
        """
        if release:
            new_schema = process_type.release_new_version(type_change)
            self.event_log.append(
                EngineEvent(
                    event_type=EventType.SCHEMA_VERSION_RELEASED,
                    details=f"{process_type.name} v{new_schema.version}",
                )
            )
        else:
            new_schema = process_type.schema_for(type_change.to_version)
        old_schema = process_type.schema_for(type_change.from_version)
        report = MigrationReport(
            process_type=process_type.name,
            from_version=type_change.from_version,
            to_version=new_schema.version,
            collect_results=collect_results,
        )
        started = time.perf_counter()
        # Compile both type schemas once up front: every per-instance
        # compliance check, replay and state adaptation below then shares
        # the same SchemaIndex instead of re-traversing the graphs.
        if indexing_enabled():
            old_schema.index
            new_schema.index
        if memoize:
            self.migrate_batch(
                list(instances),
                old_schema,
                new_schema,
                type_change,
                report,
                plan=plan,
                cache=cache,
                parallel=parallel,
                job_context=job_context,
            )
        else:
            for instance in instances:
                report.add(self.migrate_instance(instance, old_schema, new_schema, type_change))
        report.duration_seconds = time.perf_counter() - started
        return report

    # ------------------------------------------------------------------ #
    # bulk migration: fingerprint-memoized batch processing
    # ------------------------------------------------------------------ #

    def compile_plan(
        self, old_schema: ProcessSchema, new_schema: ProcessSchema, type_change: TypeChange
    ) -> "MigrationPlan":
        """Compile ΔT once for this manager's compliance method."""
        from repro.core.migration_plan import MigrationPlan

        return MigrationPlan.compile(
            old_schema, new_schema, type_change, compliance_method=self.compliance_method
        )

    def migrate_batch(
        self,
        instances: Sequence[ProcessInstance],
        old_schema: ProcessSchema,
        new_schema: ProcessSchema,
        type_change: TypeChange,
        report: Optional[MigrationReport] = None,
        plan: Optional["MigrationPlan"] = None,
        cache: Optional["FingerprintCache"] = None,
        parallel: int = 0,
        emit: bool = True,
        job_context: Optional[Callable[[], Any]] = None,
    ) -> List[InstanceMigrationResult]:
        """Migrate one batch of instances with fingerprint memoization.

        Unbiased instances are fingerprinted; the first member of each
        class computes the verdict (compiled plan check + one state
        adaptation), every further member applies it O(1).  Instances the
        verdict cannot be shared for — biased ones and state-conflicting
        instances under the rollback policy (the rollback mutates the
        case) — run the classic :meth:`migrate_instance`, optionally in
        ``parallel`` worker threads (each case is touched by exactly one
        thread; the engine contract the concurrent runtime established).
        Results are reported in input order regardless of parallelism and
        events are emitted in the same order.

        ``job_context`` is an optional context-manager factory entered
        around every classic residue migration.  The façade passes its
        per-thread WAL journal suspension here: worker threads would
        otherwise escape the *calling* thread's suspension and journal
        rollback compensations as separate step records inside an
        evolution whose typed record already covers them.
        """
        from repro.core.migration_plan import FingerprintCache

        if plan is None:
            plan = self.compile_plan(old_schema, new_schema, type_change)
        if cache is None:
            cache = FingerprintCache()
        ordered = list(instances)
        results: List[Optional[InstanceMigrationResult]] = [None] * len(ordered)
        residue: List[int] = []
        for position, instance in enumerate(ordered):
            result = self._memoized_fast_path(instance, new_schema, plan, cache)
            if result is None:
                residue.append(position)
            else:
                results[position] = result
        if residue:

            def run_classic(position: int) -> InstanceMigrationResult:
                if job_context is None:
                    return self.migrate_instance(
                        ordered[position], old_schema, new_schema, type_change, emit=False
                    )
                with job_context():
                    return self.migrate_instance(
                        ordered[position], old_schema, new_schema, type_change, emit=False
                    )

            if parallel > 1 and len(residue) > 1:
                from concurrent.futures import ThreadPoolExecutor

                with ThreadPoolExecutor(max_workers=parallel) as pool:
                    for position, result in zip(residue, pool.map(run_classic, residue)):
                        results[position] = result
            else:
                for position in residue:
                    results[position] = run_classic(position)
        emitted: List[InstanceMigrationResult] = []
        for result in results:
            assert result is not None  # every position is filled above
            if report is not None:
                report.add(result)
            if emit:
                self._emit(result)
            emitted.append(result)
        return emitted

    def _memoized_fast_path(
        self,
        instance: ProcessInstance,
        new_schema: ProcessSchema,
        plan: "MigrationPlan",
        cache: "FingerprintCache",
    ) -> Optional[InstanceMigrationResult]:
        """Decide one instance from its fingerprint class, or defer.

        Returns ``None`` when the instance must run the classic path:
        biased cases, un-fingerprintable states and state conflicts under
        the rollback policy (compensation is a per-case mutation).
        """
        from repro.core.migration_plan import ClassVerdict

        started = time.perf_counter()
        if not instance.status.is_active:
            return InstanceMigrationResult(
                instance_id=instance.instance_id,
                outcome=MigrationOutcome.FINISHED,
                was_biased=instance.is_biased,
                duration_seconds=time.perf_counter() - started,
            )
        if instance.is_biased:
            return None
        fingerprint = plan.fingerprint_of_instance(instance)
        if fingerprint is None:
            return None
        verdict = cache.get(fingerprint)
        if verdict is None:
            compliance = plan.check(instance)
            adapted = (
                self.adapter.adapt(instance, new_schema) if compliance.compliant else None
            )
            verdict = cache.put(
                ClassVerdict(
                    fingerprint=fingerprint,
                    compliance=compliance,
                    adapted_marking=adapted,
                    outcome=(
                        MigrationOutcome.MIGRATED
                        if compliance.compliant
                        else self._outcome_for_conflicts(compliance.conflicts)
                    ),
                )
            )
        if verdict.compliant:
            instance.marking = verdict.adapted_marking.copy()
            instance.rebind_schema(new_schema)
            return InstanceMigrationResult(
                instance_id=instance.instance_id,
                outcome=MigrationOutcome.MIGRATED,
                was_biased=False,
                duration_seconds=time.perf_counter() - started,
            )
        if (
            verdict.outcome is MigrationOutcome.STATE_CONFLICT
            and self.rollback_on_state_conflict
        ):
            return None  # the rollback attempt compensates work: per-case
        return InstanceMigrationResult(
            instance_id=instance.instance_id,
            outcome=verdict.outcome,
            conflicts=list(verdict.conflicts),
            was_biased=False,
            duration_seconds=time.perf_counter() - started,
        )

    # ------------------------------------------------------------------ #
    # on-touch migration (progressive rollout)
    # ------------------------------------------------------------------ #

    def migrate_on_touch(
        self,
        instance: ProcessInstance,
        old_schema: ProcessSchema,
        new_schema: ProcessSchema,
        type_change: TypeChange,
        plan: "MigrationPlan",
        cache: "FingerprintCache",
        emit: bool = False,
    ) -> InstanceMigrationResult:
        """Attempt one lazy adoption when a case is touched mid-rollout.

        The memoized fast path decides the case from its fingerprint
        class in O(1) whenever the class verdict is already cached; the
        non-shareable residue (biased cases, un-fingerprintable states,
        rollback-policy state conflicts) runs the classic per-case check.
        The outcome contract is identical to the eager paths, which is
        what makes lazy adoption byte-equal to ``migrate="compliant"``
        per fingerprint class (property-tested).
        """
        result = self._memoized_fast_path(instance, new_schema, plan, cache)
        if result is None:
            result = self.migrate_instance(
                instance, old_schema, new_schema, type_change, emit=False
            )
        if emit:
            self._emit(result)
        return result

    # ------------------------------------------------------------------ #
    # single-instance migration
    # ------------------------------------------------------------------ #

    def migrate_instance(
        self,
        instance: ProcessInstance,
        old_schema: ProcessSchema,
        new_schema: ProcessSchema,
        type_change: TypeChange,
        emit: bool = True,
    ) -> InstanceMigrationResult:
        """Check one instance and migrate it if possible.

        ``emit=False`` defers the migration event — the bulk path emits
        all events in report order after a (possibly parallel) batch.
        """
        started = time.perf_counter()
        was_biased = instance.is_biased
        if not instance.status.is_active:
            return InstanceMigrationResult(
                instance_id=instance.instance_id,
                outcome=MigrationOutcome.FINISHED,
                was_biased=was_biased,
                duration_seconds=time.perf_counter() - started,
            )
        if was_biased:
            result = self._migrate_biased(instance, new_schema, type_change)
        else:
            result = self._migrate_unbiased(instance, new_schema, type_change)
        result.duration_seconds = time.perf_counter() - started
        if emit:
            self._emit(result)
        return result

    def _migrate_unbiased(
        self,
        instance: ProcessInstance,
        new_schema: ProcessSchema,
        type_change: TypeChange,
    ) -> InstanceMigrationResult:
        compliance = self.checker.check(
            instance,
            type_change.operations,
            target_schema=new_schema,
            method=self.compliance_method,
        )
        if not compliance.compliant:
            outcome = self._outcome_for_conflicts(compliance.conflicts)
            if outcome is MigrationOutcome.STATE_CONFLICT and self.rollback_on_state_conflict:
                rolled_back = self._try_rollback_migration(instance, new_schema, type_change)
                if rolled_back is not None:
                    return rolled_back
            return InstanceMigrationResult(
                instance_id=instance.instance_id,
                outcome=outcome,
                conflicts=compliance.conflicts,
                was_biased=False,
            )
        adapted = self.adapter.adapt(instance, new_schema)
        instance.marking = adapted
        instance.rebind_schema(new_schema)
        return InstanceMigrationResult(
            instance_id=instance.instance_id,
            outcome=MigrationOutcome.MIGRATED,
            was_biased=False,
        )

    def _try_rollback_migration(
        self,
        instance: ProcessInstance,
        new_schema: ProcessSchema,
        type_change: TypeChange,
    ) -> Optional[InstanceMigrationResult]:
        """Compensate blocking activities and migrate, if a feasible plan exists."""
        from repro.core.rollback import RollbackManager, RollbackPlanner

        plan = RollbackPlanner(engine=self.engine).plan(instance, type_change.operations)
        if not plan.feasible or not plan.activities:
            return None
        RollbackManager(engine=self.engine, event_log=self.event_log).rollback_activities(
            instance, plan.activities
        )
        compliance = self.checker.check(
            instance,
            type_change.operations,
            target_schema=new_schema,
            method=self.compliance_method,
        )
        if not compliance.compliant:
            return None
        adapted = self.adapter.adapt(instance, new_schema)
        instance.marking = adapted
        instance.rebind_schema(new_schema)
        return InstanceMigrationResult(
            instance_id=instance.instance_id,
            outcome=MigrationOutcome.MIGRATED_WITH_ROLLBACK,
            was_biased=False,
        )

    def _migrate_biased(
        self,
        instance: ProcessInstance,
        new_schema: ProcessSchema,
        type_change: TypeChange,
    ) -> InstanceMigrationResult:
        bias: ChangeLog = instance.bias
        # 1. semantic conflicts: ΔT and ΔI overlap on the same schema elements.
        #    One benign special case is handled first: the instance anticipated
        #    the type change (its bias already contains exactly the operations
        #    of ΔT) — then the bias is absorbed into the new version instead of
        #    rejecting the instance.
        overlap = bias.overlaps_with(type_change.operations)
        if overlap:
            absorbed = self._try_absorb_anticipated_change(instance, bias, new_schema, type_change)
            if absorbed is not None:
                return absorbed
            conflict = semantic_conflict(
                "the type change and the instance's ad-hoc changes modify the same schema "
                "elements; their combined intent is ambiguous",
                nodes=tuple(sorted(overlap)),
            )
            return InstanceMigrationResult(
                instance_id=instance.instance_id,
                outcome=MigrationOutcome.SEMANTIC_CONFLICT,
                conflicts=[conflict],
                was_biased=True,
            )
        # 2. structural conflicts: ΔT applied to (S + ΔI) must yield a correct schema
        try:
            combined_schema = type_change.operations.apply_to(instance.execution_schema, check=True)
        except (OperationError, SchemaError) as exc:
            conflict = structural_conflict(
                f"the type change cannot be applied to the instance-specific schema: {exc}",
            )
            return InstanceMigrationResult(
                instance_id=instance.instance_id,
                outcome=MigrationOutcome.STRUCTURAL_CONFLICT,
                conflicts=[conflict],
                was_biased=True,
            )
        combined_schema.schema_id = f"{new_schema.schema_id}+{instance.instance_id}"
        combined_schema.version = new_schema.version
        report = self.verifier.verify(combined_schema)
        if not report.is_correct:
            conflicts = [
                structural_conflict(str(issue), nodes=tuple(issue.nodes)) for issue in report.errors
            ]
            return InstanceMigrationResult(
                instance_id=instance.instance_id,
                outcome=MigrationOutcome.STRUCTURAL_CONFLICT,
                conflicts=conflicts,
                was_biased=True,
            )
        # 3. state-related conflicts on the combined schema
        compliance = self.checker.check(
            instance,
            type_change.operations,
            target_schema=combined_schema,
            method=self.compliance_method,
        )
        if not compliance.compliant:
            return InstanceMigrationResult(
                instance_id=instance.instance_id,
                outcome=self._outcome_for_conflicts(compliance.conflicts),
                conflicts=compliance.conflicts,
                was_biased=True,
            )
        adapted = self.adapter.adapt(instance, combined_schema)
        instance.marking = adapted
        instance.rebind_schema(new_schema, execution_schema=combined_schema)
        instance.bias = bias
        return InstanceMigrationResult(
            instance_id=instance.instance_id,
            outcome=MigrationOutcome.MIGRATED_WITH_BIAS,
            was_biased=True,
        )

    def _try_absorb_anticipated_change(
        self,
        instance: ProcessInstance,
        bias: ChangeLog,
        new_schema: ProcessSchema,
        type_change: TypeChange,
    ) -> Optional[InstanceMigrationResult]:
        """Migrate an instance whose bias already contains the whole ΔT.

        If every operation of the type change appears verbatim in the
        instance's bias, the instance anticipated the type change: it is
        re-linked to the new version, the anticipated operations are removed
        from its bias ("bias purging") and its execution schema stays exactly
        as it is.  Returns ``None`` when the overlap is not of this benign
        form (the caller then reports a semantic conflict).
        """
        delta_payloads = [operation.to_dict() for operation in type_change.operations]
        remaining_operations = list(bias.operations)
        for payload in delta_payloads:
            index = next(
                (i for i, operation in enumerate(remaining_operations) if operation.to_dict() == payload),
                None,
            )
            if index is None:
                return None
            del remaining_operations[index]
        remaining = ChangeLog(remaining_operations, comment=bias.comment)
        # the instance-specific schema must be reproducible as S' + remaining bias
        try:
            rebuilt = remaining.apply_to(new_schema, check=True)
        except (OperationError, SchemaError):
            return None
        if not rebuilt.structurally_equals(instance.execution_schema):
            return None
        execution_schema = instance.execution_schema if len(remaining) else None
        instance.rebind_schema(new_schema, execution_schema=execution_schema)
        if len(remaining):
            instance.set_bias(remaining, instance.execution_schema)
        else:
            instance.clear_bias()
        outcome = (
            MigrationOutcome.MIGRATED_WITH_BIAS if len(remaining) else MigrationOutcome.MIGRATED
        )
        return InstanceMigrationResult(
            instance_id=instance.instance_id,
            outcome=outcome,
            was_biased=True,
        )

    # ------------------------------------------------------------------ #

    @staticmethod
    def _outcome_for_conflicts(conflicts: Sequence[Conflict]) -> MigrationOutcome:
        kinds = {conflict.kind for conflict in conflicts}
        if ConflictKind.STRUCTURAL in kinds:
            return MigrationOutcome.STRUCTURAL_CONFLICT
        if ConflictKind.SEMANTIC in kinds:
            return MigrationOutcome.SEMANTIC_CONFLICT
        if ConflictKind.DATA in kinds:
            return MigrationOutcome.DATA_CONFLICT
        return MigrationOutcome.STATE_CONFLICT

    def _emit(self, result: InstanceMigrationResult) -> None:
        event_type = (
            EventType.INSTANCE_MIGRATED if result.migrated else EventType.MIGRATION_REJECTED
        )
        if result.outcome is MigrationOutcome.FINISHED:
            return
        self.event_log.append(
            EngineEvent(
                event_type=event_type,
                instance_id=result.instance_id,
                details=result.outcome.value,
            )
        )
