"""Low-level graph transformation primitives.

The high-level change operations (:mod:`repro.core.operations`) are
composed from a handful of primitives that keep the block structure of a
WSM net intact: inserting a node into a control edge, removing an
activity and bridging its neighbours, or wrapping an activity into a new
AND/XOR block.  The primitives mutate the schema they are given — change
operations always work on copies.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.schema.edges import Edge, EdgeType
from repro.schema.graph import ProcessSchema, SchemaError
from repro.schema.nodes import Node, NodeType


def insert_node_between(schema: ProcessSchema, node: Node, pred: str, succ: str) -> None:
    """Insert ``node`` into the control edge ``pred -> succ``.

    The edge must exist; it is removed and replaced by the two edges
    ``pred -> node`` and ``node -> succ``.  Guards on the original edge
    stay on the first of the two new edges so XOR branch entry semantics
    are preserved.
    """
    if not schema.has_edge(pred, succ, EdgeType.CONTROL):
        raise SchemaError(f"no control edge {pred!r} -> {succ!r} to insert into")
    original = schema.edge(pred, succ, EdgeType.CONTROL)
    schema.add_node(node)
    schema.remove_edge(pred, succ, EdgeType.CONTROL)
    schema.add_edge(Edge(source=pred, target=node.node_id, edge_type=EdgeType.CONTROL, guard=original.guard))
    schema.add_edge(Edge(source=node.node_id, target=succ, edge_type=EdgeType.CONTROL))


def remove_activity_and_bridge(schema: ProcessSchema, node_id: str) -> Tuple[str, str]:
    """Remove an activity and reconnect its control predecessor and successor.

    Returns the ``(pred, succ)`` pair that was bridged.  The activity must
    have exactly one incoming and one outgoing control edge (guaranteed
    for activities of block-structured schemas).  If the bridge edge
    already exists (the neighbouring split/join pair already has an empty
    branch) a :class:`SchemaError` is raised.
    """
    node = schema.node(node_id)
    if not node.is_activity:
        raise SchemaError(f"only activity nodes can be deleted, {node_id!r} is {node.node_type.value}")
    incoming = schema.edges_to(node_id, EdgeType.CONTROL)
    outgoing = schema.edges_from(node_id, EdgeType.CONTROL)
    if len(incoming) != 1 or len(outgoing) != 1:
        raise SchemaError(
            f"activity {node_id!r} must have exactly one incoming and outgoing control edge"
        )
    pred, succ = incoming[0].source, outgoing[0].target
    guard = incoming[0].guard
    if schema.has_edge(pred, succ, EdgeType.CONTROL):
        raise SchemaError(
            f"removing {node_id!r} would duplicate the control edge {pred!r} -> {succ!r}"
        )
    schema.remove_node(node_id)
    schema.add_edge(Edge(source=pred, target=succ, edge_type=EdgeType.CONTROL, guard=guard))
    return pred, succ


def wrap_in_parallel_block(
    schema: ProcessSchema,
    existing: str,
    new_node: Node,
    split_id: str,
    join_id: str,
) -> None:
    """Put ``new_node`` in parallel to the existing activity ``existing``.

    The single control edge into and out of ``existing`` are re-routed
    through a freshly created AND split/join pair::

        pred -> AND_split -> existing -> AND_join -> succ
                        \\-> new_node --/
    """
    target = schema.node(existing)
    if not target.is_activity:
        raise SchemaError(f"can only parallel-insert next to activities, {existing!r} is {target.node_type.value}")
    incoming = schema.edges_to(existing, EdgeType.CONTROL)
    outgoing = schema.edges_from(existing, EdgeType.CONTROL)
    if len(incoming) != 1 or len(outgoing) != 1:
        raise SchemaError(f"activity {existing!r} must have exactly one incoming and outgoing control edge")
    pred_edge, succ_edge = incoming[0], outgoing[0]
    pred, succ = pred_edge.source, succ_edge.target
    schema.add_node(Node(node_id=split_id, node_type=NodeType.AND_SPLIT, name=split_id))
    schema.add_node(Node(node_id=join_id, node_type=NodeType.AND_JOIN, name=join_id))
    schema.add_node(new_node)
    schema.remove_edge(pred, existing, EdgeType.CONTROL)
    schema.remove_edge(existing, succ, EdgeType.CONTROL)
    schema.add_edge(Edge(source=pred, target=split_id, edge_type=EdgeType.CONTROL, guard=pred_edge.guard))
    schema.add_edge(Edge(source=split_id, target=existing, edge_type=EdgeType.CONTROL))
    schema.add_edge(Edge(source=split_id, target=new_node.node_id, edge_type=EdgeType.CONTROL))
    schema.add_edge(Edge(source=existing, target=join_id, edge_type=EdgeType.CONTROL))
    schema.add_edge(Edge(source=new_node.node_id, target=join_id, edge_type=EdgeType.CONTROL))
    schema.add_edge(Edge(source=join_id, target=succ, edge_type=EdgeType.CONTROL))


def insert_conditional_block(
    schema: ProcessSchema,
    new_node: Node,
    pred: str,
    succ: str,
    guard: Optional[str],
    split_id: str,
    join_id: str,
) -> None:
    """Insert ``new_node`` conditionally between ``pred`` and ``succ``.

    Creates an XOR block whose guarded branch contains the new activity
    and whose default branch is empty::

        pred -> XOR_split -[guard]-> new_node -> XOR_join -> succ
                        \\--(default)------------/
    """
    if not schema.has_edge(pred, succ, EdgeType.CONTROL):
        raise SchemaError(f"no control edge {pred!r} -> {succ!r} to insert into")
    original = schema.edge(pred, succ, EdgeType.CONTROL)
    schema.add_node(Node(node_id=split_id, node_type=NodeType.XOR_SPLIT, name=split_id))
    schema.add_node(Node(node_id=join_id, node_type=NodeType.XOR_JOIN, name=join_id))
    schema.add_node(new_node)
    schema.remove_edge(pred, succ, EdgeType.CONTROL)
    schema.add_edge(Edge(source=pred, target=split_id, edge_type=EdgeType.CONTROL, guard=original.guard))
    schema.add_edge(Edge(source=split_id, target=new_node.node_id, edge_type=EdgeType.CONTROL, guard=guard))
    schema.add_edge(Edge(source=new_node.node_id, target=join_id, edge_type=EdgeType.CONTROL))
    schema.add_edge(Edge(source=split_id, target=join_id, edge_type=EdgeType.CONTROL))
    schema.add_edge(Edge(source=join_id, target=succ, edge_type=EdgeType.CONTROL))


def control_edge_between(schema: ProcessSchema, pred: str, succ: str) -> Optional[Edge]:
    """The control edge ``pred -> succ`` if present, else ``None``."""
    if schema.has_edge(pred, succ, EdgeType.CONTROL):
        return schema.edge(pred, succ, EdgeType.CONTROL)
    return None
