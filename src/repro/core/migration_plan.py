"""Compiled migration plans: pay per change operation, not per instance.

The paper's scalability argument is that compliance is decided by
"precise and easy to implement compliance conditions" per change
operation instead of replaying histories.  This module pushes the same
idea one level further for *bulk* migration: a :class:`TypeChange` is
compiled **once** into a :class:`MigrationPlan` —

* every structural question an operation's compliance condition asks
  (does the insertion position exist? which successors follow the
  wrapped activity?) is answered once against the old schema's compiled
  :class:`~repro.schema.index.SchemaIndex` and becomes a constant of the
  plan;
* what remains per instance is a tiny *residual predicate* over the
  instance marking (and, for the few operations that need it, the data
  context or the reduced history) — a handful of dict lookups;
* the plan also knows the exact **state projection** those residual
  predicates and the subsequent marking adaptation read, and derives a
  compliance **fingerprint** from it.  Two unbiased instances with equal
  fingerprints are indistinguishable to the whole migration pipeline:
  they receive the same :class:`~repro.core.compliance.ComplianceResult`
  and — when compliant — the same adapted marking.  Bulk migration
  therefore computes one verdict per *equivalence class* and applies it
  O(1) per member (see :class:`FingerprintCache`).

Soundness contract
------------------

``fingerprint_of_instance``/``fingerprint_of_record`` cover every input
of the per-instance work (verdict *and* adapted marking):

* the complete marking (node and edge states),
* the loop iteration counters (the adaptation's loop-end decisions),
* the values of the *relevant* data elements — the variables read by any
  guard or loop condition of the target schema plus every element a
  change operation's condition inspects,
* the instance status and schema version, and
* the reduced-history projection — only when the plan actually reads
  history: the ``insertSyncEdge`` condition orders events, and the
  ``replay``/``both`` compliance methods re-execute the trace (their
  fingerprints include the entries *with* their data values).

Biased instances are fingerprinted only together with their canonical
bias payload (``fingerprint_of_record(..., include_bias=True)``): their
combined-schema checks are a pure function of (bias, projected state),
with the data projection widened by the bias's own guard and data
elements (:meth:`MigrationPlan.bias_extras`).  Rollback migrations are
never shared (they mutate the instance).  The property suite
cross-checks the contract by migrating randomized populations with
memoization on and off and asserting byte-identical reports and end
states.
"""

from __future__ import annotations

import ast
import hashlib
import json
import marshal
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Set

from repro.core.compliance import ComplianceChecker, ComplianceResult
from repro.core.conflicts import Conflict
from repro.core.evolution import TypeChange
from repro.core.operations import (
    AddDataEdge,
    AddDataElement,
    ChangeActivityAttributes,
    ChangeOperation,
    ConditionalInsertActivity,
    DeleteActivity,
    DeleteDataEdge,
    DeleteDataElement,
    DeleteSyncEdge,
    InsertSyncEdge,
    MoveActivity,
    ParallelInsertActivity,
    SerialInsertActivity,
)
from repro.runtime.instance import ProcessInstance
from repro.runtime.markings import Marking
from repro.runtime.states import NodeState
from repro.schema.data import DataAccess
from repro.schema.graph import ProcessSchema
from repro.schema.index import indexing_enabled

#: Node states counting as "started" (mirrors ``NodeState.is_started``);
#: the residual predicates test membership on the raw marking dict.
_STARTED_STATES = frozenset(
    state for state in NodeState if state.is_started
)

#: Residual predicate: marking node-states + a tiny instance view -> compliant?
#: ``None`` means "cannot be decided from the projection" (fall back to the
#: interpreted condition).
Residual = Callable[[Mapping[str, NodeState], ProcessInstance], Optional[bool]]


def _expression_names(expression: str) -> Set[str]:
    """Variable names referenced by a guard / loop-condition expression."""
    try:
        tree = ast.parse(expression, mode="eval")
    except SyntaxError:
        return set()
    return {node.id for node in ast.walk(tree) if isinstance(node, ast.Name)}


def _not_started_in(states: Mapping[str, NodeState], node_id: str) -> bool:
    state = states.get(node_id)
    return state is None or state not in _STARTED_STATES


def _stable(value: Any) -> Any:
    """Order-canonical form of a (possibly nested) data value.

    Snapshots re-serialise records with ``sort_keys=True`` while live
    values keep insertion order — dicts are therefore hashed as sorted
    item tuples so equal values fingerprint equally on every provenance.
    """
    if isinstance(value, dict):
        return tuple((key, _stable(item)) for key, item in sorted(value.items()))
    if isinstance(value, (list, tuple)):
        return tuple(_stable(item) for item in value)
    return value


@dataclass
class CompiledOperation:
    """One change operation specialised against the old type schema."""

    operation: ChangeOperation
    #: node ids introduced by *earlier* operations of the same change
    introduced: Set[str] = field(default_factory=set)
    #: compile-time verdict (the structural facts are instance-independent):
    #: ``False`` when every unbiased instance of the old version conflicts
    #: structurally, ``True`` when the operation is always compliant.
    constant: Optional[bool] = None
    #: residual marking predicate (``None``: always consult ``constant``)
    residual: Optional[Residual] = None

    def fast_verdict(
        self, states: Mapping[str, NodeState], instance: ProcessInstance
    ) -> Optional[bool]:
        if self.constant is not None:
            return self.constant
        if self.residual is not None:
            return self.residual(states, instance)
        return None


class MigrationPlan:
    """A :class:`TypeChange` compiled for one old → new schema pair.

    Built once per evolution via :meth:`compile`; shared by every
    unbiased instance still running on ``old_schema``'s version.
    """

    def __init__(
        self,
        old_schema: ProcessSchema,
        new_schema: ProcessSchema,
        operations: Sequence[ChangeOperation],
        compliance_method: str,
        compiled: List[CompiledOperation],
        relevant_elements: Optional[Set[str]],
        include_history: bool,
        include_history_values: bool,
    ) -> None:
        self.old_schema = old_schema
        self.new_schema = new_schema
        self.operations = list(operations)
        self.compliance_method = compliance_method
        self.compiled = compiled
        #: data elements whose values the plan may read (``None`` = all)
        self.relevant_elements = relevant_elements
        self.include_history = include_history
        self.include_history_values = include_history_values
        self._checker = ComplianceChecker()
        self._compliant_result = ComplianceResult(
            compliant=True,
            conflicts=[],
            method=compliance_method,
            checked_operations=len(self.operations),
        )
        # canonical extraction order for the hot fingerprint path: node
        # and edge states are projected positionally in the old schema's
        # index order, so no per-instance sorting (and no key strings)
        # enter the digest.  ``None`` when indexing is disabled.
        self._node_order: Optional[tuple] = None
        self._edge_order: Optional[tuple] = None
        if indexing_enabled():
            index = old_schema.index
            self._node_order = tuple(index.node_ids)
            self._edge_order = tuple(index.non_loop_edge_keys())
        #: per-distinct-bias projection extensions (see :meth:`bias_extras`)
        self._bias_extras: Dict[Any, "BiasExtras"] = {}

    # ------------------------------------------------------------------ #
    # compilation
    # ------------------------------------------------------------------ #

    @classmethod
    def compile(
        cls,
        old_schema: ProcessSchema,
        new_schema: ProcessSchema,
        type_change: TypeChange,
        compliance_method: str = "conditions",
    ) -> "MigrationPlan":
        """Specialise every operation of ``type_change`` against the schemas."""
        operations = list(type_change.operations)
        compiled: List[CompiledOperation] = []
        relevant: Set[str] = set()
        history_needed = compliance_method != "conditions"
        introduced: Set[str] = set()
        for operation in operations:
            compiled.append(
                _compile_operation(operation, old_schema, set(introduced), relevant)
            )
            if isinstance(operation, InsertSyncEdge):
                history_needed = True
            introduced |= operation.added_node_ids()
        # the adaptation's propagation pass evaluates guards and loop
        # conditions of the *target* schema over the instance data
        for edge in new_schema.edges:
            if edge.guard is not None:
                relevant |= _expression_names(edge.guard)
            if edge.loop_condition is not None:
                relevant |= _expression_names(edge.loop_condition)
        include_history_values = compliance_method != "conditions"
        return cls(
            old_schema=old_schema,
            new_schema=new_schema,
            operations=operations,
            compliance_method=compliance_method,
            compiled=compiled,
            relevant_elements=relevant,
            include_history=history_needed,
            include_history_values=include_history_values,
        )

    # ------------------------------------------------------------------ #
    # per-instance evaluation
    # ------------------------------------------------------------------ #

    def applies_to(self, instance: ProcessInstance) -> bool:
        """True when the compiled residuals may decide this instance."""
        return (
            not instance.is_biased
            and instance.schema_version == self.old_schema.version
        )

    def check(self, instance: ProcessInstance) -> ComplianceResult:
        """Compliance of one unbiased instance — cheap plan evaluation.

        When every compiled residual proves compliance the (shared)
        positive result is returned without touching the interpreted
        conditions; any conflict or undecidable residual falls back to
        the exact interpreted check, so conflicts carry the identical
        :class:`Conflict` descriptions the per-instance path produces.
        """
        if self.compliance_method == "conditions" and self.applies_to(instance):
            states = instance.marking.node_states
            verdict: Optional[bool] = True
            for compiled in self.compiled:
                decided = compiled.fast_verdict(states, instance)
                if decided is True:
                    continue
                verdict = decided
                break
            if verdict is True:
                return self._compliant_result
        return self._checker.check(
            instance,
            self.operations,
            target_schema=self.new_schema,
            method=self.compliance_method,
        )

    # ------------------------------------------------------------------ #
    # fingerprints
    # ------------------------------------------------------------------ #

    # -- biased classes ------------------------------------------------- #

    def bias_extras(self, bias_payload: Mapping[str, Any]) -> "BiasExtras":
        """Projection extension for one canonical bias change log.

        A biased instance's migration additionally reads (a) the bias
        itself — overlap, structural and semantic checks, the combined
        schema — and (b) the data elements the bias's own guards and data
        edges introduce (the adaptation propagates over the *combined*
        schema).  Both are pure functions of the bias payload, computed
        once per distinct bias and cached.
        """
        key = _stable(bias_payload)
        extras = self._bias_extras.get(key)
        if extras is None:
            from repro.core.operations import operation_from_dict

            elements: Set[str] = set()
            parse_failed = False
            for op_payload in bias_payload.get("operations", []):
                try:
                    operation = operation_from_dict(op_payload)
                except Exception:
                    parse_failed = True
                    break
                guard = getattr(operation, "guard", None)
                if guard:
                    elements |= _expression_names(guard)
                affected = getattr(operation, "affected_elements", None)
                if affected is not None:
                    elements |= set(affected())
            extras = BiasExtras(
                key=key, elements=frozenset(elements), supported=not parse_failed
            )
            self._bias_extras[key] = extras
        return extras

    def fingerprint_of_instance(self, instance: ProcessInstance) -> Optional[str]:
        """Compliance fingerprint of a live unbiased instance.

        Biased instances are not fingerprinted on this path (their
        verdict additionally depends on their private execution schema;
        the façade's record-level bias classes use
        :meth:`fingerprint_of_record` with ``include_bias=True``).
        """
        if instance.is_biased:
            return None
        history = None
        if self.include_history:
            history = [
                [
                    entry.sequence,
                    entry.event.value,
                    entry.activity,
                    entry.iteration,
                    dict(entry.values),
                    entry.user,
                    entry.timestamp,
                ]
                for entry in instance.history.reduced()
            ]
        initial_writes = None
        if self.compliance_method != "conditions":
            initial_writes = [
                [write.element, write.value]
                for write in instance.data.writes
                if write.writer == "<initial>"
            ]
        node_states = instance.marking.node_states
        edge_states = instance.marking.edge_states
        marking_part: Any = None
        if (
            self._node_order is not None
            and instance.schema_version == self.old_schema.version
            and len(node_states) == len(self._node_order)
            and len(edge_states) == len(self._edge_order)
        ):
            # positional projection in index order — no sorting, no keys
            marking_part = (
                "ix",
                tuple(
                    node_states[node_id].value if node_id in node_states else None
                    for node_id in self._node_order
                ),
                tuple(
                    edge_states[key].value if key in edge_states else None
                    for key in self._edge_order
                ),
            )
        else:
            marking_part = (
                "sorted",
                tuple(sorted((n, s.value) for n, s in node_states.items())),
                tuple(sorted((k[0], k[1], k[2], s.value) for k, s in edge_states.items())),
            )
        return self._digest(
            schema_version=instance.schema_version,
            status=instance.status.value,
            marking_part=marking_part,
            loop_iterations=instance.loop_iterations,
            values=instance.data.values,
            history=history,
            initial_writes=initial_writes,
        )

    def fingerprint_of_record(
        self, record: Mapping[str, Any], include_bias: bool = False
    ) -> Optional[str]:
        """Compliance fingerprint straight from a stored instance record.

        Produces exactly the digest :meth:`fingerprint_of_instance` would
        produce for the hydrated instance — without materialising it.
        The stored ``marking`` *is* the canonical ``Marking.to_dict``
        form, so the hot path hashes it without any transformation.

        ``include_bias=True`` additionally fingerprints *biased* records:
        the canonical bias payload joins the digest and the data
        projection is widened by the bias's own guard/data elements
        (:meth:`bias_extras`) — two biased records with equal fingerprints
        then receive identical migration outcomes, adapted markings and
        re-encoded representations.  Without it, biased records return
        ``None``.
        """
        bias_part = None
        extra_elements: Optional[frozenset] = None
        if record.get("biased"):
            if not include_bias:
                return None
            bias_payload = record.get("bias")
            if not bias_payload:
                return None
            extras = self.bias_extras(bias_payload)
            if not extras.supported:
                return None
            bias_part = extras.key
            extra_elements = extras.elements
        history = None
        if self.include_history:
            history = [
                [
                    entry.get("sequence", 0),
                    entry.get("event"),
                    entry.get("activity"),
                    entry.get("iteration", 0),
                    entry.get("values", {}),
                    entry.get("user"),
                    entry.get("timestamp", 0),
                ]
                for entry in record.get("history", {}).get("entries", [])
                if not entry.get("superseded", False)
            ]
        initial_writes = None
        if self.compliance_method != "conditions":
            initial_writes = [
                [write.get("element"), write.get("value")]
                for write in record.get("data", {}).get("writes", [])
                if write.get("writer") == "<initial>"
            ]
        marking = record.get("marking", {})
        node_states = marking.get("node_states", {})
        edge_list = marking.get("edge_states", [])
        marking_part: Any = None
        version = record.get("schema_version", 0)
        if (
            self._node_order is not None
            and version == self.old_schema.version
            and len(node_states) == len(self._node_order)
            and len(edge_list) == len(self._edge_order)
            and self._edge_list_in_index_order(edge_list)
        ):
            # the stored edge list keeps its Marking.initial insertion
            # order through every round trip (JSON sorts dict keys, never
            # list elements) — states can be read positionally
            marking_part = (
                "ix",
                tuple([node_states.get(node_id) for node_id in self._node_order]),
                tuple([entry["state"] for entry in edge_list]),
            )
        else:
            marking_part = (
                "sorted",
                tuple(sorted(node_states.items())),
                tuple(
                    sorted(
                        (e["source"], e["target"], e["edge_type"], e["state"])
                        for e in edge_list
                    )
                ),
            )
        return self._digest(
            schema_version=version,
            status=record.get("status", "running"),
            marking_part=marking_part,
            loop_iterations=record.get("loop_iterations", {}),
            values=record.get("data", {}).get("values", {}),
            history=history,
            initial_writes=initial_writes,
            bias_part=bias_part,
            extra_elements=extra_elements,
        )

    def _edge_list_in_index_order(self, edge_list: List[Mapping[str, Any]]) -> bool:
        """Spot-check that a stored edge list follows the index order.

        Unbiased instances of the plan's old version always keep their
        ``Marking.initial`` edge order (only ad-hoc change — bias — adds
        or removes marking edges); the first and last entries are checked
        so a surprising record safely falls back to the sorted
        canonicalisation instead of fingerprinting positionally.
        """
        if not edge_list:
            return True
        first, last = edge_list[0], edge_list[-1]
        return (
            (first["source"], first["target"], first["edge_type"]) == self._edge_order[0]
            and (last["source"], last["target"], last["edge_type"]) == self._edge_order[-1]
        )

    def _digest(
        self,
        schema_version: int,
        status: str,
        marking_part: Any,
        loop_iterations: Mapping[str, int],
        values: Mapping[str, Any],
        history: Optional[List[Any]],
        initial_writes: Optional[List[Any]],
        bias_part: Any = None,
        extra_elements: Optional[frozenset] = None,
    ) -> str:
        if self.relevant_elements is None:
            names = sorted(values)
        else:
            relevant = self.relevant_elements
            if extra_elements:
                relevant = relevant | extra_elements
            names = sorted(name for name in relevant if name in values)
        payload = (
            schema_version,
            status,
            marking_part,
            sorted(loop_iterations.items()),
            [(name, _stable(values[name])) for name in names],
            [entry[:4] + [_stable(entry[4])] + entry[5:] for entry in history]
            if history is not None
            else None,
            [[element, _stable(value)] for element, value in initial_writes]
            if initial_writes is not None
            else None,
            bias_part,
        )
        # marshal is the fastest deterministic serialiser for the
        # JSON-shaped payloads both fingerprint sources produce; the
        # fingerprint only lives for the duration of one evolution, so
        # cross-version marshal stability is irrelevant.  Format version
        # 2 is required: version 3+ encodes object *identity*
        # (backreferences for shared objects), which would fingerprint
        # equal values differently depending on string interning.
        # ``_stable`` canonicalises nested container values (snapshots
        # re-serialise records with sorted keys, so raw dict order is not
        # provenance-stable).  Payloads holding unmarshalable in-memory
        # objects fall back to json — object identity then keeps
        # distinct objects in distinct classes, which costs sharing,
        # never soundness.
        try:
            rendered = marshal.dumps(payload, 2)
        except (ValueError, TypeError):
            rendered = json.dumps(payload, sort_keys=True, default=repr).encode("utf-8")
        return hashlib.sha256(rendered).hexdigest()


# --------------------------------------------------------------------------- #
# per-operation residual compilers
# --------------------------------------------------------------------------- #


def _compile_operation(
    operation: ChangeOperation,
    old_schema: ProcessSchema,
    introduced: Set[str],
    relevant: Set[str],
) -> CompiledOperation:
    """Specialise one operation; collects its relevant data elements."""
    affected = getattr(operation, "affected_elements", None)
    if affected is not None:
        relevant |= set(affected())

    def exists(node_id: str) -> bool:
        return old_schema.has_node(node_id) or node_id in introduced

    compiled = CompiledOperation(operation=operation, introduced=introduced)

    if isinstance(operation, (SerialInsertActivity, ConditionalInsertActivity)):
        if not exists(operation.succ) or not exists(operation.pred):
            compiled.constant = False
            return compiled
        succ = operation.succ
        if succ in introduced:
            compiled.constant = True
            return compiled
        compiled.residual = lambda states, _i: _not_started_in(states, succ)
        return compiled

    if isinstance(operation, ParallelInsertActivity):
        if not exists(operation.parallel_to):
            compiled.constant = False
            return compiled
        successors = tuple(
            s
            for s in old_schema.successors(operation.parallel_to)
            if s not in introduced
        )
        if not successors:
            compiled.constant = True
            return compiled
        compiled.residual = lambda states, _i: all(
            _not_started_in(states, s) for s in successors
        )
        return compiled

    if isinstance(operation, DeleteActivity):
        if not exists(operation.activity_id):
            compiled.constant = False
            return compiled
        activity_id = operation.activity_id
        written = tuple(
            write.element
            for write in old_schema.writes_of(activity_id)
            if write.element not in operation.supply_values
        )
        relevant |= set(written)
        if not written:
            compiled.residual = lambda states, _i: (
                True if _not_started_in(states, activity_id) else None
            )
            return compiled

        def delete_residual(
            states: Mapping[str, NodeState], instance: ProcessInstance
        ) -> Optional[bool]:
            if not _not_started_in(states, activity_id):
                return None  # started: exact conflict text from the slow path
            if all(instance.data.has_value(element) for element in written):
                return True
            return None  # potential data conflict: delegate

        compiled.residual = delete_residual
        return compiled

    if isinstance(operation, MoveActivity):
        nodes = (operation.activity_id, operation.new_pred, operation.new_succ)
        if not all(exists(n) for n in nodes):
            compiled.constant = False
            return compiled
        activity_id, new_succ = operation.activity_id, operation.new_succ
        succ_free = new_succ in introduced
        compiled.residual = lambda states, _i: (
            _not_started_in(states, activity_id)
            and (succ_free or _not_started_in(states, new_succ))
        )
        return compiled

    if isinstance(operation, InsertSyncEdge):
        if not exists(operation.source) or not exists(operation.target):
            compiled.constant = False
            return compiled
        target = operation.target
        if target in introduced:
            compiled.constant = True
            return compiled
        # started targets need the history-ordering check: delegate
        compiled.residual = lambda states, _i: (
            True if _not_started_in(states, target) else None
        )
        return compiled

    if isinstance(operation, AddDataEdge):
        if not exists(operation.activity):
            compiled.constant = False
            return compiled
        activity, element = operation.activity, operation.element
        if operation.access is DataAccess.READ and not operation.mandatory:
            compiled.constant = True
            return compiled
        if operation.access is DataAccess.READ:

            def read_residual(
                states: Mapping[str, NodeState], instance: ProcessInstance
            ) -> Optional[bool]:
                if _not_started_in(states, activity):
                    return True
                return True if instance.data.has_value(element) else None

            compiled.residual = read_residual
        else:
            compiled.residual = lambda states, _i: (
                True if _not_started_in(states, activity) else None
            )
        return compiled

    if isinstance(
        operation,
        (DeleteSyncEdge, AddDataElement, DeleteDataElement, DeleteDataEdge, ChangeActivityAttributes),
    ):
        compiled.constant = True
        return compiled

    # unknown / future operation: no residual — the plan falls back to the
    # interpreted conditions for every instance (still memoizable, because
    # the fingerprint then covers marking, data and history conservatively)
    return compiled


# --------------------------------------------------------------------------- #
# the per-class verdict cache
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class BiasExtras:
    """Cached projection extension for one distinct bias change log."""

    #: canonical (hashable) form of the bias payload — joins the digest
    key: Any
    #: data elements the bias's guards and data edges read or write
    elements: frozenset
    #: False when the payload could not be parsed (never share then)
    supported: bool = True


@dataclass
class ClassVerdict:
    """The shared outcome of one fingerprint equivalence class."""

    fingerprint: str
    compliance: ComplianceResult
    #: adapted marking template (``None`` when not compliant)
    adapted_marking: Optional[Marking] = None
    #: members that received this verdict so far (for telemetry)
    members: int = 0
    #: the per-instance ``MigrationOutcome`` this class maps to, cached
    #: by the migration manager so members never re-derive it
    outcome: Any = None

    @property
    def compliant(self) -> bool:
        return self.compliance.compliant

    @property
    def conflicts(self) -> List[Conflict]:
        return self.compliance.conflicts

    def adapted_marking_dict(self) -> Dict[str, Any]:
        """Serialised template (cached) for direct stored-record rewrites."""
        if self.adapted_marking is None:
            raise ValueError("non-compliant classes have no adapted marking")
        cached = getattr(self, "_marking_dict", None)
        if cached is None:
            cached = self.adapted_marking.to_dict()
            self._marking_dict = cached  # type: ignore[attr-defined]
        return cached


class FingerprintCache:
    """Verdicts per fingerprint class, with hit/miss telemetry."""

    def __init__(self) -> None:
        self._verdicts: Dict[str, ClassVerdict] = {}
        self.hits = 0
        self.misses = 0

    def get(self, fingerprint: str) -> Optional[ClassVerdict]:
        verdict = self._verdicts.get(fingerprint)
        if verdict is not None:
            self.hits += 1
            verdict.members += 1
        return verdict

    def put(self, verdict: ClassVerdict) -> ClassVerdict:
        """Insert a verdict; the first one per class wins.

        Concurrent touch paths (lazy rollout) may derive the same class
        verdict twice; ``setdefault`` keeps exactly one so every member
        shares one template object.  Equal fingerprints produce identical
        verdicts (property-tested), so losing the race is harmless.
        """
        existing = self._verdicts.setdefault(verdict.fingerprint, verdict)
        if existing is verdict:
            self.misses += 1
        else:
            self.hits += 1
        existing.members += 1
        return existing

    def __len__(self) -> int:
        return len(self._verdicts)

    @property
    def classes(self) -> int:
        return len(self._verdicts)
