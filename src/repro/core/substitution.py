"""Minimal substitution blocks for biased instances (paper Fig. 2).

Storing a full schema copy for every ad-hoc modified instance wastes
space; materialising the instance-specific schema from the change log on
every access wastes time.  ADEPT2's hybrid: keep, per biased instance, a
**minimal substitution block** — just the schema elements its bias adds,
removes or rewires — and overlay it onto the referenced original schema
when the instance is accessed.

The substitution block is computed as a structural diff between the
original schema and the biased schema (obtained by applying the change
log once).  Overlaying is a cheap, purely mechanical merge; the result is
graph-equal to applying the bias directly, which the tests assert.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Set, Tuple

from repro.schema.data import DataEdge, DataElement
from repro.schema.edges import Edge
from repro.schema.graph import ProcessSchema


@dataclass
class SubstitutionBlock:
    """The minimal delta turning an original schema into a biased one.

    Attributes:
        added_nodes: Nodes present only in the biased schema.
        removed_nodes: Node ids present only in the original schema.
        modified_nodes: Nodes whose attributes changed (new definition).
        added_edges: Edges present only in the biased schema.
        removed_edges: Edge keys present only in the original schema.
        modified_edges: Edges whose guard/condition changed (new definition).
        added_elements: Data elements present only in the biased schema.
        removed_elements: Data element names removed by the bias.
        added_data_edges: Data edges present only in the biased schema.
        removed_data_edges: Data edge keys removed by the bias.
    """

    added_nodes: List = field(default_factory=list)
    removed_nodes: List[str] = field(default_factory=list)
    modified_nodes: List = field(default_factory=list)
    added_edges: List[Edge] = field(default_factory=list)
    removed_edges: List[Tuple[str, str, str]] = field(default_factory=list)
    modified_edges: List[Edge] = field(default_factory=list)
    added_elements: List[DataElement] = field(default_factory=list)
    removed_elements: List[str] = field(default_factory=list)
    added_data_edges: List[DataEdge] = field(default_factory=list)
    removed_data_edges: List[Tuple[str, str, str]] = field(default_factory=list)

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #

    @classmethod
    def from_schemas(cls, original: ProcessSchema, biased: ProcessSchema) -> "SubstitutionBlock":
        """Compute the minimal delta between ``original`` and ``biased``."""
        block = cls()
        original_nodes = original.nodes
        biased_nodes = biased.nodes
        for node_id, node in biased_nodes.items():
            if node_id not in original_nodes:
                block.added_nodes.append(node)
            elif node != original_nodes[node_id]:
                block.modified_nodes.append(node)
        block.removed_nodes = [node_id for node_id in original_nodes if node_id not in biased_nodes]

        original_edges = {edge.key: edge for edge in original.edges}
        biased_edges = {edge.key: edge for edge in biased.edges}
        for key, edge in biased_edges.items():
            if key not in original_edges:
                block.added_edges.append(edge)
            elif edge != original_edges[key]:
                block.modified_edges.append(edge)
        block.removed_edges = [key for key in original_edges if key not in biased_edges]

        original_elements = original.data_elements
        biased_elements = biased.data_elements
        for name, element in biased_elements.items():
            if name not in original_elements:
                block.added_elements.append(element)
        block.removed_elements = [name for name in original_elements if name not in biased_elements]

        original_data_edges = {d.key: d for d in original.data_edges}
        biased_data_edges = {d.key: d for d in biased.data_edges}
        for key, data_edge in biased_data_edges.items():
            if key not in original_data_edges:
                block.added_data_edges.append(data_edge)
        block.removed_data_edges = [key for key in original_data_edges if key not in biased_data_edges]
        return block

    # ------------------------------------------------------------------ #
    # overlay
    # ------------------------------------------------------------------ #

    def overlay(self, original: ProcessSchema, schema_id: Optional[str] = None) -> ProcessSchema:
        """Materialise the biased schema by overlaying this block on ``original``."""
        from repro.schema.edges import EdgeType
        from repro.schema.graph import SchemaError

        result = original.copy(schema_id=schema_id or original.schema_id)
        for key in self.removed_data_edges:
            activity, element, access = key
            try:
                result.remove_data_edge(activity, element, access)
            except SchemaError:
                pass
        for name in self.removed_elements:
            if result.has_data_element(name):
                result.remove_data_element(name)
        for key in self.removed_edges:
            source, target, edge_type = key
            if result.has_edge(source, target, EdgeType(edge_type)):
                result.remove_edge(source, target, EdgeType(edge_type))
        for node_id in self.removed_nodes:
            if result.has_node(node_id):
                result.remove_node(node_id)
        for node in self.added_nodes:
            result.add_node(node)
        for node in self.modified_nodes:
            result.replace_node(node)
        for edge in self.added_edges:
            result.add_edge(edge)
        for edge in self.modified_edges:
            result.replace_edge(edge)
        for element in self.added_elements:
            if not result.has_data_element(element.name):
                result.add_data_element(element)
        for data_edge in self.added_data_edges:
            if data_edge.key not in {d.key for d in result.data_edges}:
                result.add_data_edge(data_edge)
        return result

    # ------------------------------------------------------------------ #
    # accounting / serialisation
    # ------------------------------------------------------------------ #

    def is_empty(self) -> bool:
        """True when the block describes no change at all."""
        return not any(
            [
                self.added_nodes,
                self.removed_nodes,
                self.modified_nodes,
                self.added_edges,
                self.removed_edges,
                self.modified_edges,
                self.added_elements,
                self.removed_elements,
                self.added_data_edges,
                self.removed_data_edges,
            ]
        )

    def element_count(self) -> int:
        """Number of schema elements recorded in the block."""
        return (
            len(self.added_nodes)
            + len(self.removed_nodes)
            + len(self.modified_nodes)
            + len(self.added_edges)
            + len(self.removed_edges)
            + len(self.modified_edges)
            + len(self.added_elements)
            + len(self.removed_elements)
            + len(self.added_data_edges)
            + len(self.removed_data_edges)
        )

    def storage_size(self) -> int:
        """Approximate persisted size in bytes (JSON rendering length)."""
        return len(json.dumps(self.to_dict(), sort_keys=True))

    def to_dict(self) -> Dict[str, Any]:
        return {
            "added_nodes": [node.to_dict() for node in self.added_nodes],
            "removed_nodes": list(self.removed_nodes),
            "modified_nodes": [node.to_dict() for node in self.modified_nodes],
            "added_edges": [edge.to_dict() for edge in self.added_edges],
            "removed_edges": [list(key) for key in self.removed_edges],
            "modified_edges": [edge.to_dict() for edge in self.modified_edges],
            "added_elements": [element.to_dict() for element in self.added_elements],
            "removed_elements": list(self.removed_elements),
            "added_data_edges": [data_edge.to_dict() for data_edge in self.added_data_edges],
            "removed_data_edges": [list(key) for key in self.removed_data_edges],
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "SubstitutionBlock":
        from repro.schema.nodes import Node

        return cls(
            added_nodes=[Node.from_dict(item) for item in payload.get("added_nodes", [])],
            removed_nodes=list(payload.get("removed_nodes", [])),
            modified_nodes=[Node.from_dict(item) for item in payload.get("modified_nodes", [])],
            added_edges=[Edge.from_dict(item) for item in payload.get("added_edges", [])],
            removed_edges=[tuple(key) for key in payload.get("removed_edges", [])],
            modified_edges=[Edge.from_dict(item) for item in payload.get("modified_edges", [])],
            added_elements=[DataElement.from_dict(item) for item in payload.get("added_elements", [])],
            removed_elements=list(payload.get("removed_elements", [])),
            added_data_edges=[DataEdge.from_dict(item) for item in payload.get("added_data_edges", [])],
            removed_data_edges=[tuple(key) for key in payload.get("removed_data_edges", [])],
        )

    def __repr__(self) -> str:
        return f"SubstitutionBlock(elements={self.element_count()})"
