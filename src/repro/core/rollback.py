"""Partial rollback (compensation) of already performed work.

ADEPTflex — the conceptual basis the paper builds on — allows rolling
back (compensating) already executed activities in order to reach a
state from which a change becomes applicable again: if an instance is
*not* state-compliant with a type change only because a few activities in
the change region already executed, those activities can be undone
(logically compensated; their effects are recorded, not erased) and the
instance migrated afterwards.

:class:`RollbackManager` implements that partial rollback on the marking
and history level, and :class:`RollbackPlanner` computes the minimal set
of activities that has to be undone to make an instance compliant with a
given change.  The migration manager can use both to offer an optional
"migrate with rollback" policy (benchmark A6 quantifies how many extra
instances that wins).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Set, Union

from repro.core.changelog import ChangeLog
from repro.errors import ReproError
from repro.core.compliance import ComplianceChecker
from repro.core.conflicts import ConflictKind
from repro.core.operations import ChangeOperation
from repro.runtime.engine import EngineError, ProcessEngine
from repro.runtime.events import EngineEvent, EventLog, EventType
from repro.runtime.history import HistoryEventType
from repro.runtime.instance import ProcessInstance
from repro.runtime.states import EdgeState, NodeState


class RollbackError(ReproError):
    """Raised when a requested rollback cannot be performed."""


@dataclass
class RollbackPlan:
    """The outcome of planning a compliance-restoring rollback.

    Attributes:
        feasible: True when undoing ``activities`` makes the instance
            compliant with the change.
        activities: Activity ids that would have to be compensated,
            in reverse execution order.
        reason: Why planning failed (when not feasible).
    """

    feasible: bool
    activities: List[str] = field(default_factory=list)
    reason: str = ""

    def __bool__(self) -> bool:
        return self.feasible


class RollbackManager:
    """Rolls back (compensates) executed activities of a running instance."""

    def __init__(self, engine: Optional[ProcessEngine] = None, event_log: Optional[EventLog] = None) -> None:
        self.engine = engine or ProcessEngine()
        self.event_log = event_log or self.engine.event_log

    # ------------------------------------------------------------------ #

    def rollback_activities(self, instance: ProcessInstance, activities: Iterable[str]) -> List[str]:
        """Compensate ``activities`` (and everything that ran after them).

        The affected region is reset to NOT_ACTIVATED, compensation entries
        are appended to the history, the original entries are superseded
        (so the reduced history reflects the rolled-back state) and the
        marking is re-propagated so execution can resume right before the
        earliest compensated activity.  Returns the compensated activity
        ids in the order they were undone.
        """
        if not instance.status.is_active:
            raise RollbackError(
                f"instance {instance.instance_id!r} is {instance.status.value}; only running "
                "instances can be rolled back"
            )
        schema = instance.execution_schema
        requested = list(dict.fromkeys(activities))
        for activity_id in requested:
            if not schema.has_node(activity_id):
                raise RollbackError(f"unknown activity {activity_id!r}")
            if not schema.node(activity_id).is_activity:
                raise RollbackError(f"{activity_id!r} is not an activity node")
            if not instance.marking.node_state(activity_id).is_started:
                raise RollbackError(f"activity {activity_id!r} has not started; nothing to roll back")

        region = self._affected_region(instance, requested)
        undone = self._compensate(instance, region)
        self.engine.propagate(instance)
        return undone

    def _affected_region(self, instance: ProcessInstance, requested: Sequence[str]) -> Set[str]:
        """The requested nodes plus every started/skipped node downstream of them."""
        schema = instance.execution_schema
        region: Set[str] = set()
        for activity_id in requested:
            region.add(activity_id)
            for successor in schema.transitive_successors(activity_id, include_sync=True):
                state = instance.marking.node_state(successor)
                if state.is_started or state in (NodeState.SKIPPED, NodeState.ACTIVATED):
                    region.add(successor)
        return region

    def _compensate(self, instance: ProcessInstance, region: Set[str]) -> List[str]:
        schema = instance.execution_schema
        # undo in reverse completion order so compensation entries read naturally
        completion_order = [
            activity
            for activity in instance.history.completed_activities(reduced=True)
            if activity in region
        ]
        undone: List[str] = []
        for activity_id in reversed(completion_order):
            instance.history.record(
                HistoryEventType.ACTIVITY_COMPENSATED,
                activity_id,
                iteration=instance.history.entries_for(activity_id, reduced=True)[-1].iteration,
            )
            self.event_log.append(
                EngineEvent(
                    event_type=EventType.ACTIVITY_COMPENSATED,
                    instance_id=instance.instance_id,
                    node_id=activity_id,
                )
            )
            undone.append(activity_id)
        # drop the undone work from the reduced history
        activity_nodes = [n for n in region if schema.has_node(n) and schema.node(n).is_activity]
        instance.history.supersede_activities(activity_nodes)
        # reset the marking of the affected region
        for node_id in region:
            instance.marking.set_node_state(node_id, NodeState.NOT_ACTIVATED)
        for edge in schema.edges:
            if edge.is_loop:
                continue
            if edge.source in region or edge.target in region:
                if edge.source in region:
                    instance.marking.set_edge_state(
                        edge.source, edge.target, EdgeState.NOT_SIGNALED, edge.edge_type
                    )
        return undone


class RollbackPlanner:
    """Plans the minimal rollback that makes an instance compliant with a change."""

    def __init__(self, engine: Optional[ProcessEngine] = None, max_rounds: int = 10) -> None:
        self.engine = engine or ProcessEngine()
        self.checker = ComplianceChecker(engine=ProcessEngine())
        self.max_rounds = max_rounds

    def plan(
        self,
        instance: ProcessInstance,
        change: Union[ChangeLog, Sequence[ChangeOperation]],
    ) -> RollbackPlan:
        """Determine which started activities must be undone for compliance.

        Works on a clone of the instance: the plan reports what *would*
        have to be compensated; nothing is changed on the real instance.
        """
        change_log = change if isinstance(change, ChangeLog) else ChangeLog(change)
        scratch = instance.clone()
        manager = RollbackManager(engine=self.engine, event_log=EventLog())
        undone: List[str] = []
        for _ in range(self.max_rounds):
            result = self.checker.check_with_conditions(scratch, change_log)
            if result.compliant:
                return RollbackPlan(feasible=True, activities=undone)
            blocking = self._blocking_activities(scratch, result)
            if not blocking:
                return RollbackPlan(
                    feasible=False,
                    activities=undone,
                    reason="the remaining conflicts are not caused by already executed activities",
                )
            try:
                undone.extend(manager.rollback_activities(scratch, blocking))
            except RollbackError as exc:
                return RollbackPlan(feasible=False, activities=undone, reason=str(exc))
        return RollbackPlan(feasible=False, activities=undone, reason="rollback planning did not converge")

    def _blocking_activities(self, instance: ProcessInstance, result) -> List[str]:
        """Started activities named by state conflicts (the undo candidates)."""
        schema = instance.execution_schema
        blocking: List[str] = []
        for conflict in result.conflicts:
            if conflict.kind is not ConflictKind.STATE:
                continue
            for node_id in conflict.nodes:
                if (
                    schema.has_node(node_id)
                    and schema.node(node_id).is_activity
                    and instance.marking.node_state(node_id).is_started
                    and node_id not in blocking
                ):
                    blocking.append(node_id)
        return blocking
