"""State adaptation of instance markings after a dynamic change.

When a compliant instance migrates to a changed schema its marking has to
be adapted: newly inserted activities before the execution frontier must
become activated, their former successors de-activated, activities in
dead branches skipped, and so on — the paper's "efficient procedures ...
for adapting the states of instances when migrating them to the new
schema" (instance I1 in Fig. 1).

Two procedures are provided:

* :meth:`StateAdapter.adapt` — the **incremental** procedure: it carries
  over the states of all nodes whose execution already finished or began,
  resets the not-yet-started region and lets one marking propagation pass
  of the engine re-derive activations and skips on the changed schema.
  Its cost is proportional to the schema size, independent of how much
  history the instance has accumulated.
* :meth:`StateAdapter.recompute_by_replay` — the **baseline**: replay the
  whole reduced history on the changed schema from scratch.  Used to
  cross-validate the incremental procedure (they must produce equivalent
  markings for compliant instances) and as the slow comparator in
  benchmark A2.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.core.compliance import ComplianceChecker
from repro.runtime.engine import ProcessEngine
from repro.runtime.instance import ProcessInstance
from repro.runtime.markings import Marking
from repro.runtime.states import EdgeState, InstanceStatus, NodeState
from repro.schema.edges import EdgeType
from repro.schema.graph import ProcessSchema
from repro.schema.nodes import NodeType


class StateAdapter:
    """Adapts instance markings to changed schemas."""

    def __init__(self, engine: Optional[ProcessEngine] = None) -> None:
        self._engine = engine or ProcessEngine()

    # ------------------------------------------------------------------ #
    # incremental adaptation
    # ------------------------------------------------------------------ #

    def adapt(self, instance: ProcessInstance, target_schema: ProcessSchema) -> Marking:
        """Compute the instance's marking on ``target_schema`` incrementally.

        The caller is responsible for having established compliance first;
        adapting the marking of a non-compliant instance yields an
        undefined (though structurally valid) result.
        """
        carried = self._carry_over(instance, target_schema)
        scratch = ProcessInstance(
            instance_id=f"{instance.instance_id}__adapt",
            schema=target_schema,
        )
        scratch.marking = carried
        scratch.data = instance.data.copy()
        scratch.history = instance.history.copy()
        scratch.loop_iterations = dict(instance.loop_iterations)
        scratch.status = InstanceStatus.RUNNING
        self._engine.propagate(scratch)
        return scratch.marking

    def _carry_over(self, instance: ProcessInstance, target_schema: ProcessSchema) -> Marking:
        """Keep the work that already happened, reset everything the change affects.

        Carried over are

        * the states of started **activities** (performed work is never
          rewound by a migration), and
        * the states of started structural nodes (splits, joins, loop nodes,
          start/end) whose incident edges are *unchanged* by the change — a
          join that received a new incoming branch, or a split with a new
          outgoing branch, has to be re-evaluated by the propagation pass,
          exactly as a history replay would.

        ``SKIPPED`` states are deliberately **not** carried: a skip is not
        performed work but a derived consequence of a branching decision.
        When that decision survives the change (the split node and its
        signalled edges are carried), the propagation pass re-derives the
        skip; when the change resets the decision (e.g. an activity inserted
        before the split), the skip must disappear — exactly as a history
        replay would leave the branch undecided.

        The states of structural nodes are likewise *derived*, never
        performed work: a join is COMPLETED because its incoming edges
        were signalled, a loop start because the flow reached it.  Such a
        state is only carried while its justification survives the change:
        every incoming non-loop edge that was signalled in the old marking
        must originate from a node that is itself carried.  Nodes are
        visited in topological order, so a reset region (e.g. an activity
        inserted before a join) transitively un-carries everything whose
        state depended on it — exactly the states a history replay would
        not reproduce until the new region has executed.

        Signalled edges are carried when they still exist and their source
        node's state was carried; new outgoing edges of carried, finished
        nodes are signalled according to that state.  One engine propagation
        pass afterwards re-derives all remaining activations and skips.
        """
        old_marking = instance.marking
        old_schema = instance.execution_schema
        marking = Marking.initial(target_schema)
        carried_nodes = set()
        for node_id in target_schema.topological_order():
            old_state = old_marking.node_state(node_id)
            if not old_state.is_started:
                continue
            node = target_schema.node(node_id)
            if not node.is_activity:
                if not self._incident_edges_unchanged(old_schema, target_schema, node_id):
                    # structural node whose branching situation changed: re-derive
                    continue
                if not self._signals_justified(
                    old_marking, target_schema, node_id, carried_nodes
                ):
                    # derived state whose upstream justification was reset
                    continue
            marking.set_node_state(node_id, old_state)
            carried_nodes.add(node_id)
        for edge in target_schema.edges:
            if edge.is_loop:
                continue
            if edge.source not in carried_nodes:
                continue
            source_state = marking.node_state(edge.source)
            if not (source_state.is_finished or source_state is NodeState.RUNNING):
                continue
            old_edge_state = old_marking.edge_states.get(edge.key)
            if old_edge_state is not None and old_edge_state is not EdgeState.NOT_SIGNALED:
                # the edge existed before and was already signalled: keep it
                marking.set_edge_state(edge.source, edge.target, old_edge_state, edge.edge_type)
            elif source_state is NodeState.COMPLETED:
                # new outgoing edge of an already completed node: it fires now
                marking.set_edge_state(edge.source, edge.target, EdgeState.TRUE_SIGNALED, edge.edge_type)
        return marking

    @staticmethod
    def _signals_justified(
        old_marking: Marking, target_schema: ProcessSchema, node_id: str, carried: set
    ) -> bool:
        """True when every signalled input of a structural node survives.

        A structural node's state is a consequence of the signals it
        received; if any of those signals came from a node whose own state
        is being re-derived (not carried), the consequence no longer holds
        and the propagation pass must re-decide it.
        """
        for edge in target_schema.edges_to(node_id):
            if edge.is_loop:
                continue
            old_edge_state = old_marking.edge_states.get(edge.key)
            if old_edge_state is None or old_edge_state is EdgeState.NOT_SIGNALED:
                continue
            if edge.source not in carried:
                return False
        return True

    @staticmethod
    def _incident_edges_unchanged(
        old_schema: ProcessSchema, target_schema: ProcessSchema, node_id: str
    ) -> bool:
        """True when the node has the same control/sync edges before and after the change."""
        if not old_schema.has_node(node_id):
            return False

        def incident(schema: ProcessSchema) -> set:
            keys = set()
            for edge in schema.edges_from(node_id) + schema.edges_to(node_id):
                if not edge.is_loop:
                    keys.add(edge.key)
            return keys

        return incident(old_schema) == incident(target_schema)

    # ------------------------------------------------------------------ #
    # baseline: full replay
    # ------------------------------------------------------------------ #

    def recompute_by_replay(
        self, instance: ProcessInstance, target_schema: ProcessSchema
    ) -> Marking:
        """Marking obtained by replaying the reduced history from scratch.

        Raises :class:`ValueError` when the history cannot be replayed on
        the target schema (i.e. the instance is not compliant) — callers
        check compliance first.
        """
        checker = ComplianceChecker(engine=self._engine)
        outcome = checker.replay_instance(instance, target_schema)
        if outcome.conflicts:
            raise ValueError(
                "history cannot be replayed on the target schema: "
                + "; ".join(str(conflict) for conflict in outcome.conflicts)
            )
        return outcome.scratch.marking

    # ------------------------------------------------------------------ #
    # convenience
    # ------------------------------------------------------------------ #

    def adapt_and_verify(
        self, instance: ProcessInstance, target_schema: ProcessSchema
    ) -> Tuple[Marking, bool]:
        """Adapt incrementally and report agreement with the replay baseline.

        Returns ``(marking, agrees)`` where ``agrees`` is True when both
        procedures yield equivalent markings for the activity nodes.  Used
        by tests and the A2 ablation benchmark.
        """
        incremental = self.adapt(instance, target_schema)
        try:
            replayed = self.recompute_by_replay(instance, target_schema)
        except ValueError:
            return incremental, False
        agrees = self._activity_states_equal(incremental, replayed, target_schema)
        return incremental, agrees

    @staticmethod
    def _activity_states_equal(
        first: Marking, second: Marking, schema: ProcessSchema
    ) -> bool:
        for node_id in schema.activity_ids():
            if first.node_state(node_id) is not second.node_state(node_id):
                return False
        return True
