"""Conflict model for dynamic process changes.

The paper's correctness principle for propagating a type change to a
(possibly ad-hoc modified) instance "excludes state-related, structural,
and semantical conflicts".  This module defines the shared conflict
vocabulary used by compliance checking, ad-hoc changes and migration:

* **state conflicts** — the instance has progressed too far for the change
  (e.g. an activity to be deleted already started); Fig. 1's instance I3;
* **structural conflicts** — applying the change to the instance's current
  execution schema would yield an incorrect schema (e.g. a
  deadlock-causing cycle); Fig. 1's instance I2;
* **semantic conflicts** — the type change and the instance's own bias
  overlap on the same schema elements, so their combined intent is
  ambiguous (e.g. both modify the same activity);
* **data conflicts** — the change would leave an activity without its
  mandatory input data (the "missing data" problem of ad-hoc deletion).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional, Tuple


class ConflictKind(str, Enum):
    """Categories of conflicts between a change and an instance."""

    STATE = "state"
    STRUCTURAL = "structural"
    SEMANTIC = "semantic"
    DATA = "data"


@dataclass(frozen=True)
class Conflict:
    """One detected conflict.

    Attributes:
        kind: The conflict category.
        message: Human readable explanation.
        nodes: Node ids involved.
        operation: String rendering of the change operation involved, if any.
        element: Data element involved, if any.
    """

    kind: ConflictKind
    message: str
    nodes: Tuple[str, ...] = ()
    operation: Optional[str] = None
    element: Optional[str] = None

    def __str__(self) -> str:
        details = []
        if self.nodes:
            details.append(f"nodes: {', '.join(self.nodes)}")
        if self.element:
            details.append(f"data: {self.element}")
        if self.operation:
            details.append(f"operation: {self.operation}")
        suffix = f" ({'; '.join(details)})" if details else ""
        return f"{self.kind.value} conflict: {self.message}{suffix}"


def state_conflict(message: str, nodes: Tuple[str, ...] = (), operation: Optional[str] = None) -> Conflict:
    """Shorthand for a state-related conflict."""
    return Conflict(kind=ConflictKind.STATE, message=message, nodes=nodes, operation=operation)


def structural_conflict(message: str, nodes: Tuple[str, ...] = (), operation: Optional[str] = None) -> Conflict:
    """Shorthand for a structural conflict."""
    return Conflict(kind=ConflictKind.STRUCTURAL, message=message, nodes=nodes, operation=operation)


def semantic_conflict(message: str, nodes: Tuple[str, ...] = (), operation: Optional[str] = None) -> Conflict:
    """Shorthand for a semantic conflict."""
    return Conflict(kind=ConflictKind.SEMANTIC, message=message, nodes=nodes, operation=operation)


def data_conflict(message: str, element: Optional[str] = None, nodes: Tuple[str, ...] = ()) -> Conflict:
    """Shorthand for a data (missing input) conflict."""
    return Conflict(kind=ConflictKind.DATA, message=message, element=element, nodes=nodes)
