"""Schema evolution: process types, versions and type changes.

A process type groups all schema versions of one business process (the
paper's Fig. 3 shows "online order, version V2").  A :class:`TypeChange`
ΔT is the change log transforming one version into the next; releasing it
produces and verifies the new version.  Whether and how running instances
follow the new version is decided by the migration manager
(:mod:`repro.core.migration`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence

from repro.core.changelog import ChangeLog
from repro.errors import ReproError
from repro.core.operations import ChangeOperation, OperationError
from repro.schema.graph import ProcessSchema
from repro.verification.verifier import SchemaVerifier


class EvolutionError(ReproError):
    """Raised when a schema version cannot be derived or released."""


@dataclass
class TypeChange:
    """A process type change ΔT: operations turning version ``from_version`` into the next."""

    from_version: int
    operations: ChangeLog
    comment: str = ""

    @classmethod
    def of(cls, from_version: int, operations: Iterable[ChangeOperation], comment: str = "") -> "TypeChange":
        """Convenience constructor from a plain operation sequence."""
        return cls(from_version=from_version, operations=ChangeLog(operations, comment=comment), comment=comment)

    @property
    def to_version(self) -> int:
        return self.from_version + 1

    def describe(self) -> str:
        header = f"ΔT: v{self.from_version} -> v{self.to_version}"
        if self.comment:
            header += f" ({self.comment})"
        return header + "\n" + self.operations.describe()

    def to_dict(self) -> Dict[str, Any]:
        return {
            "from_version": self.from_version,
            "comment": self.comment,
            "operations": self.operations.to_dict(),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "TypeChange":
        return cls(
            from_version=payload["from_version"],
            operations=ChangeLog.from_dict(payload.get("operations", {})),
            comment=payload.get("comment", ""),
        )


class ProcessType:
    """All released schema versions of one business process."""

    def __init__(self, name: str, initial_schema: Optional[ProcessSchema] = None) -> None:
        if not name:
            raise EvolutionError("process type name must be non-empty")
        self.name = name
        self._versions: Dict[int, ProcessSchema] = {}
        self._changes: Dict[int, TypeChange] = {}
        if initial_schema is not None:
            self.add_version(initial_schema)

    # ------------------------------------------------------------------ #

    @property
    def versions(self) -> List[int]:
        """All released version numbers in ascending order."""
        return sorted(self._versions)

    @property
    def latest_version(self) -> int:
        if not self._versions:
            raise EvolutionError(f"process type {self.name!r} has no released version")
        return max(self._versions)

    @property
    def latest_schema(self) -> ProcessSchema:
        return self._versions[self.latest_version]

    def schema_for(self, version: int) -> ProcessSchema:
        try:
            return self._versions[version]
        except KeyError:
            raise EvolutionError(f"process type {self.name!r} has no version {version}") from None

    def change_into(self, version: int) -> Optional[TypeChange]:
        """The type change that produced ``version`` (None for the initial one)."""
        return self._changes.get(version)

    def add_version(self, schema: ProcessSchema, type_change: Optional[TypeChange] = None) -> None:
        """Register an externally built schema as a new version."""
        if schema.version in self._versions:
            raise EvolutionError(f"version {schema.version} of {self.name!r} already exists")
        if self._versions and schema.version != self.latest_version + 1:
            raise EvolutionError(
                f"versions must be released in order: expected {self.latest_version + 1}, "
                f"got {schema.version}"
            )
        self._versions[schema.version] = schema
        if type_change is not None:
            self._changes[schema.version] = type_change

    # ------------------------------------------------------------------ #

    def release_new_version(
        self,
        type_change: TypeChange,
        verifier: Optional[SchemaVerifier] = None,
    ) -> ProcessSchema:
        """Apply ΔT to its base version, verify the result and release it.

        Raises :class:`EvolutionError` when the operations cannot be applied
        or the resulting schema fails buildtime verification — a type change
        must never introduce the defects verification rules out.
        """
        base = self.schema_for(type_change.from_version)
        if type_change.from_version != self.latest_version:
            raise EvolutionError(
                f"type change starts from v{type_change.from_version} but the latest version "
                f"is v{self.latest_version}"
            )
        try:
            new_schema = type_change.operations.apply_to(base, check=True)
        except OperationError as exc:
            raise EvolutionError(f"type change cannot be applied: {exc}") from exc
        new_schema.version = base.version + 1
        new_schema.schema_id = f"{self.name}_v{new_schema.version}"
        new_schema.name = self.name
        report = (verifier or SchemaVerifier()).verify(new_schema)
        if not report.is_correct:
            raise EvolutionError(
                "the new schema version fails buildtime verification:\n" + report.summary()
            )
        self._versions[new_schema.version] = new_schema
        self._changes[new_schema.version] = type_change
        return new_schema

    def withdraw_version(self, version: int) -> ProcessSchema:
        """Withdraw the latest released version (canary rollback).

        Only the newest version may be withdrawn — versions are released
        contiguously and :meth:`release_new_version` insists the next ΔT
        starts from the latest version, so a rolled-back canary version
        must disappear from the repository entirely for evolution to
        continue from its predecessor.  At least one version must remain.
        """
        if version != self.latest_version:
            raise EvolutionError(
                f"only the latest version (v{self.latest_version}) of {self.name!r} "
                f"can be withdrawn, not v{version}"
            )
        if len(self._versions) == 1:
            raise EvolutionError(
                f"cannot withdraw the only version of process type {self.name!r}"
            )
        schema = self._versions.pop(version)
        self._changes.pop(version, None)
        return schema

    def __repr__(self) -> str:
        return f"ProcessType({self.name!r}, versions={self.versions})"
