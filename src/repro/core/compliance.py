"""Compliance checking: may an instance be moved to a changed schema?

The paper provides a "comprehensive correctness criterion for deciding on
the compliance of process instances with a modified type schema ...
based on a relaxed notion of trace equivalence", and, "in order to enable
efficient compliance checks, for each change operation ... precise and
easy to implement compliance conditions".

Both are implemented here:

* :meth:`ComplianceChecker.check_by_replay` replays the instance's
  *reduced* execution history on the changed schema with a scratch
  engine — the general, meta-model independent criterion;
* :meth:`ComplianceChecker.check_with_conditions` evaluates the
  per-operation conditions on the instance marking and history — the
  efficient check used in production, whose agreement with the replay
  criterion is asserted by the test suite and measured by benchmark E1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Union

from repro.core.changelog import ChangeLog
from repro.core.conflicts import Conflict, ConflictKind, state_conflict, structural_conflict
from repro.core.operations import ChangeOperation
from repro.runtime.engine import EngineError, ProcessEngine
from repro.runtime.history import HistoryEventType
from repro.runtime.instance import ProcessInstance
from repro.runtime.states import NodeState
from repro.schema.graph import ProcessSchema, SchemaError


@dataclass
class ComplianceResult:
    """Outcome of one compliance check."""

    compliant: bool
    conflicts: List[Conflict] = field(default_factory=list)
    method: str = "conditions"
    checked_operations: int = 0

    def conflict_kinds(self) -> List[ConflictKind]:
        """The kinds of all conflicts found (empty when compliant)."""
        return [conflict.kind for conflict in self.conflicts]

    def summary(self) -> str:
        if self.compliant:
            return f"compliant (method={self.method})"
        rendered = "; ".join(str(conflict) for conflict in self.conflicts)
        return f"not compliant (method={self.method}): {rendered}"

    def __bool__(self) -> bool:
        return self.compliant


def _as_operations(change: Union[ChangeLog, Sequence[ChangeOperation]]) -> List[ChangeOperation]:
    if isinstance(change, ChangeLog):
        return change.operations
    return list(change)


class ComplianceChecker:
    """Decides compliance of instances with changed schemas."""

    def __init__(self, engine: Optional[ProcessEngine] = None) -> None:
        self._engine = engine or ProcessEngine()

    # ------------------------------------------------------------------ #
    # efficient per-operation conditions (paper Fig. 1)
    # ------------------------------------------------------------------ #

    def check_with_conditions(
        self,
        instance: ProcessInstance,
        change: Union[ChangeLog, Sequence[ChangeOperation]],
    ) -> ComplianceResult:
        """Evaluate every operation's compliance condition on the instance.

        Operations are evaluated in order; nodes introduced by earlier
        operations of the same change are known to later ones (e.g. the
        paper's ΔT first inserts ``send questions`` and then adds a sync
        edge starting at it).
        """
        operations = _as_operations(change)
        conflicts: List[Conflict] = []
        introduced: set = set()
        for operation in operations:
            conflicts.extend(operation.compliance_conflicts(instance, introduced=introduced))
            introduced |= operation.added_node_ids()
        return ComplianceResult(
            compliant=not conflicts,
            conflicts=conflicts,
            method="conditions",
            checked_operations=len(operations),
        )

    # ------------------------------------------------------------------ #
    # general criterion: replay of the reduced history
    # ------------------------------------------------------------------ #

    def check_by_replay(
        self,
        instance: ProcessInstance,
        target_schema: ProcessSchema,
        reduced: bool = True,
    ) -> ComplianceResult:
        """Replay the instance's (reduced) history on ``target_schema``.

        The instance is compliant iff every recorded start and completion
        can be re-executed in order on the changed schema (with the same
        data values), i.e. its trace could have been produced there as
        well.  ``reduced=False`` replays the *full* history including
        superseded loop iterations — the naive baseline benchmark A1
        compares the relaxed (reduced) criterion against.
        """
        conflicts = self.replay_conflicts(instance, target_schema, reduced=reduced)
        return ComplianceResult(
            compliant=not conflicts,
            conflicts=conflicts,
            method="replay" if reduced else "replay_full",
            checked_operations=0,
        )

    def replay_conflicts(
        self, instance: ProcessInstance, target_schema: ProcessSchema, reduced: bool = True
    ) -> List[Conflict]:
        """The conflicts that stop the (reduced) trace from replaying, if any."""
        replayed = self.replay_instance(instance, target_schema, reduced=reduced)
        return replayed.conflicts

    def replay_instance(
        self, instance: ProcessInstance, target_schema: ProcessSchema, reduced: bool = True
    ) -> "ReplayOutcome":
        """Replay and return the full outcome (scratch instance + conflicts).

        The scratch instance is also used by the state adapter as the
        reference marking ("marking obtained by replaying the history from
        scratch").
        """
        # Replays of a whole population against one changed type schema all
        # run on the same compiled SchemaIndex: the scratch engine below
        # resolves every structural question from ``target_schema.index``,
        # which is cached on the schema across instances.
        initial_values = {
            write.element: write.value
            for write in instance.data.writes
            if write.writer == "<initial>"
        }
        scratch = self._engine.create_instance(
            target_schema,
            instance_id=f"{instance.instance_id}__replay",
            initial_data=initial_values or None,
        )
        conflicts: List[Conflict] = []
        entries = instance.history.reduced() if reduced else instance.history.entries
        for entry in entries:
            if entry.event is HistoryEventType.LOOP_ITERATION_STARTED:
                continue
            if entry.event is HistoryEventType.ACTIVITY_SKIPPED:
                continue
            activity = entry.activity
            if not target_schema.has_node(activity):
                conflicts.append(
                    structural_conflict(
                        f"history refers to activity {activity!r} which does not exist on the "
                        "changed schema",
                        nodes=(activity,),
                    )
                )
                break
            try:
                if entry.event is HistoryEventType.ACTIVITY_STARTED:
                    if scratch.marking.node_state(activity) is not NodeState.ACTIVATED:
                        conflicts.append(
                            state_conflict(
                                f"activity {activity!r} started in the recorded history but is not "
                                f"activatable at that point on the changed schema "
                                f"(state {scratch.marking.node_state(activity).value})",
                                nodes=(activity,),
                            )
                        )
                        break
                    self._engine.start_activity(scratch, activity, user=entry.user)
                elif entry.event is HistoryEventType.ACTIVITY_COMPLETED:
                    self._engine.complete_activity(
                        scratch, activity, outputs=dict(entry.values), user=entry.user
                    )
            except (EngineError, SchemaError) as exc:
                conflicts.append(
                    state_conflict(
                        f"replaying the history on the changed schema failed at {activity!r}: {exc}",
                        nodes=(activity,),
                    )
                )
                break
        return ReplayOutcome(scratch=scratch, conflicts=conflicts)

    # ------------------------------------------------------------------ #
    # combined check
    # ------------------------------------------------------------------ #

    def check(
        self,
        instance: ProcessInstance,
        change: Union[ChangeLog, Sequence[ChangeOperation]],
        target_schema: Optional[ProcessSchema] = None,
        method: str = "conditions",
    ) -> ComplianceResult:
        """Check compliance with the selected method.

        ``method`` is ``"conditions"`` (default), ``"replay"`` (requires
        ``target_schema``) or ``"both"`` (replay is only consulted when the
        conditions find no conflict — belt and braces).
        """
        if method == "conditions":
            return self.check_with_conditions(instance, change)
        if method == "replay":
            if target_schema is None:
                raise ValueError("replay compliance checking requires the target schema")
            return self.check_by_replay(instance, target_schema)
        if method == "both":
            result = self.check_with_conditions(instance, change)
            if not result.compliant or target_schema is None:
                return result
            replay_result = self.check_by_replay(instance, target_schema)
            replay_result.method = "both"
            replay_result.checked_operations = result.checked_operations
            return replay_result
        raise ValueError(f"unknown compliance method {method!r}")


@dataclass
class ReplayOutcome:
    """Result of replaying a history on a changed schema."""

    scratch: ProcessInstance
    conflicts: List[Conflict] = field(default_factory=list)

    @property
    def compliant(self) -> bool:
        return not self.conflicts
