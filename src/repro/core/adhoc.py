"""Ad-hoc changes of single running process instances.

ADEPT2 "supports different kinds of ad-hoc deviations from the pre-modeled
process template (e.g., to insert, delete, or shift activities)" that
"do not lead to an unstable system behaviour".  The :class:`AdHocChanger`
enforces exactly that:

1. the operations' schema preconditions must hold on the instance's
   current execution schema,
2. the resulting instance-specific schema must pass buildtime
   verification (no deadlock-causing cycles, no broken data flow),
3. the instance's state must be compliant with the change (per-operation
   conditions), and
4. the marking is adapted so the instance keeps running seamlessly.

Applied operations are appended to the instance's bias (change log); the
substitution block for storage purposes is derived from it by the storage
layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Union

from repro.core.changelog import ChangeLog
from repro.errors import ReproError
from repro.core.compliance import ComplianceChecker
from repro.core.conflicts import Conflict, structural_conflict
from repro.core.operations import ChangeOperation, OperationError
from repro.core.state_adaptation import StateAdapter
from repro.runtime.engine import ProcessEngine
from repro.runtime.events import EngineEvent, EventLog, EventType
from repro.runtime.instance import ProcessInstance
from repro.schema.graph import ProcessSchema, SchemaError
from repro.verification.verifier import SchemaVerifier


class AdHocChangeError(ReproError):
    """Raised when an ad-hoc change cannot be applied safely."""

    def __init__(self, message: str, conflicts: Optional[Sequence[Conflict]] = None) -> None:
        super().__init__(message)
        self.conflicts: List[Conflict] = list(conflicts or [])


@dataclass
class AdHocChangeResult:
    """Outcome of a successfully applied ad-hoc change."""

    instance_id: str
    applied: ChangeLog
    new_execution_schema: ProcessSchema
    conflicts: List[Conflict] = field(default_factory=list)

    @property
    def operation_count(self) -> int:
        return len(self.applied)


class AdHocChanger:
    """Applies ad-hoc changes to single running instances."""

    def __init__(
        self,
        engine: Optional[ProcessEngine] = None,
        compliance_method: str = "conditions",
        event_log: Optional[EventLog] = None,
        authorization: Optional[object] = None,
    ) -> None:
        self.engine = engine or ProcessEngine()
        self.event_log = event_log if event_log is not None else self.engine.event_log
        self.compliance_method = compliance_method
        self.checker = ComplianceChecker(engine=ProcessEngine())
        self.adapter = StateAdapter(engine=ProcessEngine())
        self.verifier = SchemaVerifier()
        #: optional :class:`repro.org.authorization.ChangeAuthorization` policy
        self.authorization = authorization

    # ------------------------------------------------------------------ #

    def apply(
        self,
        instance: ProcessInstance,
        change: Union[ChangeLog, Sequence[ChangeOperation]],
        comment: str = "",
        user: Optional[str] = None,
    ) -> AdHocChangeResult:
        """Apply an ad-hoc change to ``instance`` or raise :class:`AdHocChangeError`.

        When the changer was constructed with an authorization policy, the
        acting ``user`` must be permitted to change instances ad hoc.
        """
        if self.authorization is not None:
            from repro.org.authorization import AuthorizationError

            try:
                self.authorization.require_instance_change(user)
            except AuthorizationError as exc:
                self._emit_rejected(instance, "not authorised")
                raise AdHocChangeError(str(exc)) from exc
        if not instance.status.is_active:
            raise AdHocChangeError(
                f"instance {instance.instance_id!r} is {instance.status.value}; "
                "only running instances can be changed ad hoc"
            )
        change_log = change if isinstance(change, ChangeLog) else ChangeLog(change, comment=comment)
        if not change_log:
            raise AdHocChangeError("the ad-hoc change contains no operations")

        # 1 + 2: schema preconditions and buildtime verification of the result
        try:
            new_execution_schema = change_log.apply_to(instance.execution_schema, check=True)
        except (OperationError, SchemaError) as exc:
            conflict = structural_conflict(f"the change cannot be applied to the instance schema: {exc}")
            self._emit_rejected(instance, str(exc))
            raise AdHocChangeError(str(exc), conflicts=[conflict]) from exc
        new_execution_schema.schema_id = f"{instance.original_schema.schema_id}+{instance.instance_id}"
        report = self.verifier.verify(new_execution_schema)
        if not report.is_correct:
            conflicts = [
                structural_conflict(str(issue), nodes=tuple(issue.nodes)) for issue in report.errors
            ]
            self._emit_rejected(instance, "verification failed")
            raise AdHocChangeError(
                "the changed instance schema fails verification:\n" + report.summary(),
                conflicts=conflicts,
            )

        # 3: state compliance of the running instance with the change
        compliance = self.checker.check(
            instance,
            change_log,
            target_schema=new_execution_schema,
            method=self.compliance_method,
        )
        if not compliance.compliant:
            self._emit_rejected(instance, "state conflicts")
            raise AdHocChangeError(
                "the instance state does not allow this ad-hoc change: " + compliance.summary(),
                conflicts=compliance.conflicts,
            )

        # 4: adapt the marking and commit the bias
        adapted_marking = self.adapter.adapt(instance, new_execution_schema)
        combined_bias = (
            instance.bias.compose(change_log) if isinstance(instance.bias, ChangeLog) else change_log
        )
        for operation in change_log:
            supplied = getattr(operation, "supply_values", None)
            if supplied:
                for element, value in supplied.items():
                    instance.data.supply(element, value)
        instance.marking = adapted_marking
        instance.set_bias(combined_bias, new_execution_schema)
        self.event_log.append(
            EngineEvent(
                event_type=EventType.ADHOC_CHANGE_APPLIED,
                instance_id=instance.instance_id,
                details=f"{len(change_log)} operation(s)" + (f": {comment}" if comment else ""),
            )
        )
        return AdHocChangeResult(
            instance_id=instance.instance_id,
            applied=change_log,
            new_execution_schema=new_execution_schema,
        )

    def try_apply(
        self,
        instance: ProcessInstance,
        change: Union[ChangeLog, Sequence[ChangeOperation]],
        comment: str = "",
        user: Optional[str] = None,
    ) -> Optional[AdHocChangeResult]:
        """Like :meth:`apply` but returns ``None`` instead of raising."""
        try:
            return self.apply(instance, change, comment=comment, user=user)
        except AdHocChangeError:
            return None

    # ------------------------------------------------------------------ #

    def _emit_rejected(self, instance: ProcessInstance, reason: str) -> None:
        self.event_log.append(
            EngineEvent(
                event_type=EventType.ADHOC_CHANGE_REJECTED,
                instance_id=instance.instance_id,
                details=reason,
            )
        )
