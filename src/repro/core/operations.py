"""High-level change operations with pre/post and compliance conditions.

ADEPT2 "offers a complete set of operations for defining changes at a high
semantic level and ensures correctness by introducing pre-/post-conditions
for these operations".  Every operation in this module knows how to

* check its **schema preconditions** (does the change make sense on this
  schema at all?),
* **apply** itself to a schema (always a copy owned by the caller),
* report its **compliance conflicts** for a concrete instance — the
  precise, easy-to-implement conditions over the instance marking and
  history that the paper's Fig. 1 illustrates for ``addActivity``,
* name the schema elements it **affects** (used for semantic overlap
  detection between concurrent type and instance changes), and
* serialise itself to a plain dictionary (change logs are persisted).

Applying an operation never bypasses verification: the ad-hoc changer and
the schema evolution manager re-verify the resulting schema, so the
buildtime guarantees survive every dynamic change.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field, replace
from typing import Any, ClassVar, Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.core.conflicts import Conflict, data_conflict, state_conflict, structural_conflict
from repro.core.primitives import (
    insert_conditional_block,
    insert_node_between,
    remove_activity_and_bridge,
    wrap_in_parallel_block,
)
from repro.errors import ReproError
from repro.runtime.instance import ProcessInstance
from repro.runtime.states import NodeState
from repro.schema.data import DataAccess, DataEdge, DataElement
from repro.schema.edges import Edge, EdgeType
from repro.schema.graph import ProcessSchema, SchemaError
from repro.schema.nodes import Node, NodeType


class OperationError(ReproError):
    """Raised when an operation is applied although its preconditions fail."""


# --------------------------------------------------------------------------- #
# base class and registry
# --------------------------------------------------------------------------- #

_OPERATION_REGISTRY: Dict[str, type] = {}


def _register(cls):
    """Class decorator adding the operation to the serialisation registry."""
    _OPERATION_REGISTRY[cls.operation_name] = cls
    return cls


def operation_from_dict(payload: Mapping[str, Any]) -> "ChangeOperation":
    """Reconstruct any change operation from its :meth:`to_dict` payload."""
    name = payload.get("op")
    if name not in _OPERATION_REGISTRY:
        raise OperationError(f"unknown change operation {name!r}")
    return _OPERATION_REGISTRY[name].from_dict(payload)


class ChangeOperation(ABC):
    """Common interface of all ADEPT2 change operations."""

    operation_name: ClassVar[str] = "abstract"

    # -- schema level ---------------------------------------------------- #

    @abstractmethod
    def check_preconditions(self, schema: ProcessSchema) -> List[str]:
        """Problems that prevent applying the operation to ``schema``."""

    @abstractmethod
    def apply(self, schema: ProcessSchema) -> None:
        """Apply the operation to ``schema`` (mutating it).

        Callers are expected to pass a copy; raising midway therefore never
        corrupts a live schema.  Raises :class:`OperationError` when the
        preconditions do not hold.
        """

    def apply_checked(self, schema: ProcessSchema) -> None:
        """Check preconditions, then apply."""
        problems = self.check_preconditions(schema)
        if problems:
            raise OperationError(
                f"{self.describe()}: preconditions failed: " + "; ".join(problems)
            )
        self.apply(schema)

    # -- instance level --------------------------------------------------- #

    @abstractmethod
    def compliance_conflicts(
        self, instance: ProcessInstance, introduced: Optional[Set[str]] = None
    ) -> List[Conflict]:
        """State-related conflicts of this change with a running instance.

        An empty list means the instance is compliant with the operation:
        its (reduced) execution history could have been produced on the
        changed schema as well, so it may be migrated / changed on the fly.
        """

    # -- metadata ---------------------------------------------------------- #

    @abstractmethod
    def affected_nodes(self) -> Set[str]:
        """Existing node ids this operation reads or rewires."""

    def added_node_ids(self) -> Set[str]:
        """Node ids newly introduced by this operation."""
        return set()

    def removed_node_ids(self) -> Set[str]:
        """Node ids removed by this operation."""
        return set()

    def affected_elements(self) -> Set[str]:
        """Data element names this operation touches."""
        return set()

    def inverse(self) -> "ChangeOperation":
        """The operation undoing this one (not available for every kind)."""
        raise NotImplementedError(f"{self.operation_name} has no static inverse")

    @abstractmethod
    def to_dict(self) -> Dict[str, Any]:
        """Serialise the operation (``op`` key identifies the kind)."""

    @classmethod
    @abstractmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ChangeOperation":
        """Reconstruct the operation from :meth:`to_dict` output."""

    def describe(self) -> str:
        """Short human readable rendering (used in reports and conflicts)."""
        return f"{self.operation_name}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return self.describe()


# --------------------------------------------------------------------------- #
# helpers shared by several operations
# --------------------------------------------------------------------------- #


def _activity_payload(node: Node) -> Dict[str, Any]:
    return node.to_dict()


def _activity_from_payload(payload: Mapping[str, Any]) -> Node:
    return Node.from_dict(payload)


def _not_started(
    instance: ProcessInstance, node_id: str, introduced: Optional[Set[str]] = None
) -> bool:
    """True when the node has not begun execution in the current iteration.

    Nodes introduced by earlier operations of the same change (``introduced``)
    have trivially not started yet.
    """
    if introduced and node_id in introduced:
        return True
    return not instance.marking.node_state(node_id).is_started


def _exists(schema: ProcessSchema, node_id: str, introduced: Optional[Set[str]] = None) -> bool:
    """True when the node exists on the schema or is introduced by the same change."""
    if schema.has_node(node_id):
        return True
    return bool(introduced and node_id in introduced)


def _attach_data_edges(
    schema: ProcessSchema, activity_id: str, reads: Sequence[str], writes: Sequence[str]
) -> None:
    for element in reads:
        if not schema.has_data_element(element):
            schema.add_data_element(DataElement(name=element))
        schema.add_data_edge(DataEdge(activity=activity_id, element=element, access=DataAccess.READ))
    for element in writes:
        if not schema.has_data_element(element):
            schema.add_data_element(DataElement(name=element))
        schema.add_data_edge(DataEdge(activity=activity_id, element=element, access=DataAccess.WRITE))


# --------------------------------------------------------------------------- #
# control-flow operations
# --------------------------------------------------------------------------- #


@_register
@dataclass
class SerialInsertActivity(ChangeOperation):
    """Insert a new activity into the control edge ``pred -> succ``.

    This is the paper's ``addActivity(S, act, Preds, Succs)`` for the serial
    case (one predecessor, one successor).  Compliance condition: the
    successor must not have started yet — otherwise the new activity could
    no longer be executed before it, so the instance's history would not be
    producible on the changed schema.
    """

    operation_name: ClassVar[str] = "serial_insert_activity"

    activity: Node = None  # type: ignore[assignment]
    pred: str = ""
    succ: str = ""
    reads: Tuple[str, ...] = ()
    writes: Tuple[str, ...] = ()

    def check_preconditions(self, schema: ProcessSchema) -> List[str]:
        problems: List[str] = []
        if schema.has_node(self.activity.node_id):
            problems.append(f"node {self.activity.node_id!r} already exists")
        if not schema.has_node(self.pred):
            problems.append(f"predecessor {self.pred!r} does not exist")
        if not schema.has_node(self.succ):
            problems.append(f"successor {self.succ!r} does not exist")
        if (
            schema.has_node(self.pred)
            and schema.has_node(self.succ)
            and not schema.has_edge(self.pred, self.succ, EdgeType.CONTROL)
        ):
            problems.append(f"no control edge {self.pred!r} -> {self.succ!r}")
        return problems

    def apply(self, schema: ProcessSchema) -> None:
        insert_node_between(schema, self.activity, self.pred, self.succ)
        _attach_data_edges(schema, self.activity.node_id, self.reads, self.writes)

    def compliance_conflicts(
        self, instance: ProcessInstance, introduced: Optional[Set[str]] = None
    ) -> List[Conflict]:
        schema = instance.execution_schema
        if not _exists(schema, self.succ, introduced) or not _exists(schema, self.pred, introduced):
            return [
                structural_conflict(
                    "insertion position no longer exists on the instance's schema",
                    nodes=(self.pred, self.succ),
                    operation=self.describe(),
                )
            ]
        if _not_started(instance, self.succ, introduced):
            return []
        return [
            state_conflict(
                f"successor {self.succ!r} already started "
                f"({instance.marking.node_state(self.succ).value}); the inserted activity "
                "could no longer run before it",
                nodes=(self.succ,),
                operation=self.describe(),
            )
        ]

    def affected_nodes(self) -> Set[str]:
        return {self.pred, self.succ}

    def added_node_ids(self) -> Set[str]:
        return {self.activity.node_id}

    def affected_elements(self) -> Set[str]:
        return set(self.reads) | set(self.writes)

    def inverse(self) -> "ChangeOperation":
        return DeleteActivity(activity_id=self.activity.node_id)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "op": self.operation_name,
            "activity": _activity_payload(self.activity),
            "pred": self.pred,
            "succ": self.succ,
            "reads": list(self.reads),
            "writes": list(self.writes),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "SerialInsertActivity":
        return cls(
            activity=_activity_from_payload(payload["activity"]),
            pred=payload["pred"],
            succ=payload["succ"],
            reads=tuple(payload.get("reads", ())),
            writes=tuple(payload.get("writes", ())),
        )

    def describe(self) -> str:
        return f"serialInsert({self.activity.node_id}, {self.pred} -> {self.succ})"


@_register
@dataclass
class ParallelInsertActivity(ChangeOperation):
    """Insert a new activity in parallel to an existing one.

    The existing activity is wrapped into a fresh AND block whose second
    branch contains the new activity.  Compliance condition: the node
    *after* the existing activity must not have started yet, because the
    new AND join has to be passed before the flow continues there.
    """

    operation_name: ClassVar[str] = "parallel_insert_activity"

    activity: Node = None  # type: ignore[assignment]
    parallel_to: str = ""
    reads: Tuple[str, ...] = ()
    writes: Tuple[str, ...] = ()

    @property
    def split_id(self) -> str:
        return f"{self.activity.node_id}__psplit"

    @property
    def join_id(self) -> str:
        return f"{self.activity.node_id}__pjoin"

    def check_preconditions(self, schema: ProcessSchema) -> List[str]:
        problems: List[str] = []
        if schema.has_node(self.activity.node_id):
            problems.append(f"node {self.activity.node_id!r} already exists")
        if not schema.has_node(self.parallel_to):
            problems.append(f"activity {self.parallel_to!r} does not exist")
            return problems
        target = schema.node(self.parallel_to)
        if not target.is_activity:
            problems.append(f"{self.parallel_to!r} is not an activity node")
        return problems

    def apply(self, schema: ProcessSchema) -> None:
        wrap_in_parallel_block(schema, self.parallel_to, self.activity, self.split_id, self.join_id)
        _attach_data_edges(schema, self.activity.node_id, self.reads, self.writes)

    def compliance_conflicts(
        self, instance: ProcessInstance, introduced: Optional[Set[str]] = None
    ) -> List[Conflict]:
        schema = instance.execution_schema
        if not _exists(schema, self.parallel_to, introduced):
            return [
                structural_conflict(
                    f"activity {self.parallel_to!r} no longer exists on the instance's schema",
                    nodes=(self.parallel_to,),
                    operation=self.describe(),
                )
            ]
        successors = schema.successors(self.parallel_to, EdgeType.CONTROL)
        blocking = [s for s in successors if not _not_started(instance, s, introduced)]
        if not blocking:
            return []
        return [
            state_conflict(
                f"the region after {self.parallel_to!r} already started; the new parallel "
                "branch could no longer complete before the flow continues",
                nodes=tuple(blocking),
                operation=self.describe(),
            )
        ]

    def affected_nodes(self) -> Set[str]:
        return {self.parallel_to}

    def added_node_ids(self) -> Set[str]:
        return {self.activity.node_id, self.split_id, self.join_id}

    def affected_elements(self) -> Set[str]:
        return set(self.reads) | set(self.writes)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "op": self.operation_name,
            "activity": _activity_payload(self.activity),
            "parallel_to": self.parallel_to,
            "reads": list(self.reads),
            "writes": list(self.writes),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ParallelInsertActivity":
        return cls(
            activity=_activity_from_payload(payload["activity"]),
            parallel_to=payload["parallel_to"],
            reads=tuple(payload.get("reads", ())),
            writes=tuple(payload.get("writes", ())),
        )

    def describe(self) -> str:
        return f"parallelInsert({self.activity.node_id} || {self.parallel_to})"


@_register
@dataclass
class ConditionalInsertActivity(ChangeOperation):
    """Insert a new activity between two nodes, guarded by a condition.

    A fresh XOR block is created whose guarded branch contains the new
    activity and whose default branch is empty.  Compliance condition is
    the same as for the serial insert: the successor must not have started.
    """

    operation_name: ClassVar[str] = "conditional_insert_activity"

    activity: Node = None  # type: ignore[assignment]
    pred: str = ""
    succ: str = ""
    guard: str = "True"
    reads: Tuple[str, ...] = ()
    writes: Tuple[str, ...] = ()

    @property
    def split_id(self) -> str:
        return f"{self.activity.node_id}__csplit"

    @property
    def join_id(self) -> str:
        return f"{self.activity.node_id}__cjoin"

    def check_preconditions(self, schema: ProcessSchema) -> List[str]:
        problems: List[str] = []
        if schema.has_node(self.activity.node_id):
            problems.append(f"node {self.activity.node_id!r} already exists")
        if not schema.has_node(self.pred):
            problems.append(f"predecessor {self.pred!r} does not exist")
        if not schema.has_node(self.succ):
            problems.append(f"successor {self.succ!r} does not exist")
        if (
            schema.has_node(self.pred)
            and schema.has_node(self.succ)
            and not schema.has_edge(self.pred, self.succ, EdgeType.CONTROL)
        ):
            problems.append(f"no control edge {self.pred!r} -> {self.succ!r}")
        return problems

    def apply(self, schema: ProcessSchema) -> None:
        insert_conditional_block(
            schema, self.activity, self.pred, self.succ, self.guard, self.split_id, self.join_id
        )
        _attach_data_edges(schema, self.activity.node_id, self.reads, self.writes)

    def compliance_conflicts(
        self, instance: ProcessInstance, introduced: Optional[Set[str]] = None
    ) -> List[Conflict]:
        schema = instance.execution_schema
        if not _exists(schema, self.succ, introduced) or not _exists(schema, self.pred, introduced):
            return [
                structural_conflict(
                    "insertion position no longer exists on the instance's schema",
                    nodes=(self.pred, self.succ),
                    operation=self.describe(),
                )
            ]
        if _not_started(instance, self.succ, introduced):
            return []
        return [
            state_conflict(
                f"successor {self.succ!r} already started; the conditional block could "
                "no longer be evaluated before it",
                nodes=(self.succ,),
                operation=self.describe(),
            )
        ]

    def affected_nodes(self) -> Set[str]:
        return {self.pred, self.succ}

    def added_node_ids(self) -> Set[str]:
        return {self.activity.node_id, self.split_id, self.join_id}

    def affected_elements(self) -> Set[str]:
        return set(self.reads) | set(self.writes)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "op": self.operation_name,
            "activity": _activity_payload(self.activity),
            "pred": self.pred,
            "succ": self.succ,
            "guard": self.guard,
            "reads": list(self.reads),
            "writes": list(self.writes),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ConditionalInsertActivity":
        return cls(
            activity=_activity_from_payload(payload["activity"]),
            pred=payload["pred"],
            succ=payload["succ"],
            guard=payload.get("guard", "True"),
            reads=tuple(payload.get("reads", ())),
            writes=tuple(payload.get("writes", ())),
        )

    def describe(self) -> str:
        return f"conditionalInsert({self.activity.node_id}, {self.pred} -> {self.succ}, if {self.guard})"


@_register
@dataclass
class DeleteActivity(ChangeOperation):
    """Delete an activity and bridge its neighbours.

    Compliance condition: the activity must not have started (running or
    completed work cannot be undone).  Deleting the writer of a data
    element that a later activity still needs raises a data conflict
    unless ``supply_values`` provides a substitute (the paper's
    "problem of missing data ... is hidden from users").
    """

    operation_name: ClassVar[str] = "delete_activity"

    activity_id: str = ""
    supply_values: Mapping[str, Any] = field(default_factory=dict)

    def check_preconditions(self, schema: ProcessSchema) -> List[str]:
        problems: List[str] = []
        if not schema.has_node(self.activity_id):
            problems.append(f"activity {self.activity_id!r} does not exist")
            return problems
        node = schema.node(self.activity_id)
        if not node.is_activity:
            problems.append(f"{self.activity_id!r} is not an activity node")
            return problems
        incoming = schema.edges_to(self.activity_id, EdgeType.CONTROL)
        outgoing = schema.edges_from(self.activity_id, EdgeType.CONTROL)
        if len(incoming) != 1 or len(outgoing) != 1:
            problems.append(
                f"activity {self.activity_id!r} must have exactly one incoming and outgoing control edge"
            )
            return problems
        pred, succ = incoming[0].source, outgoing[0].target
        if schema.has_edge(pred, succ, EdgeType.CONTROL):
            problems.append(
                f"deleting {self.activity_id!r} would duplicate the control edge {pred!r} -> {succ!r}"
            )
        problems.extend(self._missing_data_problems(schema))
        return problems

    def _missing_data_problems(self, schema: ProcessSchema) -> List[str]:
        problems: List[str] = []
        for write in schema.writes_of(self.activity_id):
            element = write.element
            if element in self.supply_values:
                continue
            other_writers = [w for w in schema.writers_of(element) if w != self.activity_id]
            readers = [r for r in schema.readers_of(element) if r != self.activity_id]
            mandatory_readers = [
                d.activity
                for d in schema.data_edges
                if d.element == element and d.is_read and d.mandatory and d.activity != self.activity_id
            ]
            has_default = schema.data_element(element).default is not None
            if mandatory_readers and not other_writers and not has_default:
                problems.append(
                    f"deleting {self.activity_id!r} removes the only writer of {element!r} "
                    f"still read by {sorted(mandatory_readers)!r} (supply a value to resolve)"
                )
        return problems

    def apply(self, schema: ProcessSchema) -> None:
        # sync edges attached to the activity are dropped together with it
        remove_activity_and_bridge(schema, self.activity_id)
        # Supplied values become defaults of the affected data elements, so
        # later readers keep a guaranteed input (the "missing data" handling
        # the paper mentions for ad-hoc deletions).
        for element_name, value in self.supply_values.items():
            if schema.has_data_element(element_name):
                element = schema.data_element(element_name)
                schema.data_elements[element_name] = replace(element, default=value)

    def compliance_conflicts(
        self, instance: ProcessInstance, introduced: Optional[Set[str]] = None
    ) -> List[Conflict]:
        schema = instance.execution_schema
        if not _exists(schema, self.activity_id, introduced):
            return [
                structural_conflict(
                    f"activity {self.activity_id!r} no longer exists on the instance's schema",
                    nodes=(self.activity_id,),
                    operation=self.describe(),
                )
            ]
        state = instance.marking.node_state(self.activity_id)
        if state.is_started:
            return [
                state_conflict(
                    f"activity {self.activity_id!r} already started ({state.value}); "
                    "performed work cannot be deleted",
                    nodes=(self.activity_id,),
                    operation=self.describe(),
                )
            ]
        conflicts: List[Conflict] = []
        for write in schema.writes_of(self.activity_id):
            element = write.element
            if element in self.supply_values or instance.data.has_value(element):
                continue
            mandatory_readers = [
                d.activity
                for d in schema.data_edges
                if d.element == element
                and d.is_read
                and d.mandatory
                and d.activity != self.activity_id
                and not instance.marking.node_state(d.activity).is_finished
            ]
            other_writers = [w for w in schema.writers_of(element) if w != self.activity_id]
            if mandatory_readers and not other_writers:
                conflicts.append(
                    data_conflict(
                        f"deleting {self.activity_id!r} leaves {sorted(mandatory_readers)!r} "
                        f"without input {element!r}",
                        element=element,
                        nodes=tuple(sorted(mandatory_readers)),
                    )
                )
        return conflicts

    def affected_nodes(self) -> Set[str]:
        return {self.activity_id}

    def removed_node_ids(self) -> Set[str]:
        return {self.activity_id}

    def to_dict(self) -> Dict[str, Any]:
        return {
            "op": self.operation_name,
            "activity_id": self.activity_id,
            "supply_values": dict(self.supply_values),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "DeleteActivity":
        return cls(
            activity_id=payload["activity_id"],
            supply_values=dict(payload.get("supply_values", {})),
        )

    def describe(self) -> str:
        return f"deleteActivity({self.activity_id})"


@_register
@dataclass
class MoveActivity(ChangeOperation):
    """Move (shift) an activity to a new position in the control flow.

    Equivalent to deleting the activity and serially re-inserting it
    between ``new_pred`` and ``new_succ``, performed as one atomic
    operation.  Compliance requires both that the activity has not started
    and that the new successor has not started.
    """

    operation_name: ClassVar[str] = "move_activity"

    activity_id: str = ""
    new_pred: str = ""
    new_succ: str = ""

    def check_preconditions(self, schema: ProcessSchema) -> List[str]:
        problems: List[str] = []
        if not schema.has_node(self.activity_id):
            problems.append(f"activity {self.activity_id!r} does not exist")
            return problems
        if not schema.node(self.activity_id).is_activity:
            problems.append(f"{self.activity_id!r} is not an activity node")
        for node_id in (self.new_pred, self.new_succ):
            if not schema.has_node(node_id):
                problems.append(f"node {node_id!r} does not exist")
        if self.activity_id in (self.new_pred, self.new_succ):
            problems.append("an activity cannot be moved next to itself")
        if problems:
            return problems
        incoming = schema.edges_to(self.activity_id, EdgeType.CONTROL)
        outgoing = schema.edges_from(self.activity_id, EdgeType.CONTROL)
        if len(incoming) != 1 or len(outgoing) != 1:
            problems.append(
                f"activity {self.activity_id!r} must have exactly one incoming and outgoing control edge"
            )
            return problems
        pred, succ = incoming[0].source, outgoing[0].target
        # the target edge must exist now, or arise from bridging the old position
        target_edge_exists = schema.has_edge(self.new_pred, self.new_succ, EdgeType.CONTROL)
        target_edge_is_bridge = (self.new_pred, self.new_succ) == (pred, succ)
        if not target_edge_exists and not target_edge_is_bridge:
            problems.append(f"no control edge {self.new_pred!r} -> {self.new_succ!r} to move into")
        if target_edge_exists and (pred, succ) == (self.new_pred, self.new_succ):
            problems.append("activity already sits between the requested nodes")
        if schema.has_edge(pred, succ, EdgeType.CONTROL):
            problems.append(
                f"moving {self.activity_id!r} would duplicate the control edge {pred!r} -> {succ!r}"
            )
        return problems

    def apply(self, schema: ProcessSchema) -> None:
        node = schema.node(self.activity_id)
        data_edges = schema.data_edges_of(self.activity_id)
        sync_out = schema.edges_from(self.activity_id, EdgeType.SYNC)
        sync_in = schema.edges_to(self.activity_id, EdgeType.SYNC)
        remove_activity_and_bridge(schema, self.activity_id)
        insert_node_between(schema, node, self.new_pred, self.new_succ)
        for data_edge in data_edges:
            schema.add_data_edge(data_edge)
        for edge in sync_out + sync_in:
            schema.add_edge(edge)

    def compliance_conflicts(
        self, instance: ProcessInstance, introduced: Optional[Set[str]] = None
    ) -> List[Conflict]:
        schema = instance.execution_schema
        missing = [
            n
            for n in (self.activity_id, self.new_pred, self.new_succ)
            if not _exists(schema, n, introduced)
        ]
        if missing:
            return [
                structural_conflict(
                    "nodes referenced by the move no longer exist on the instance's schema",
                    nodes=tuple(missing),
                    operation=self.describe(),
                )
            ]
        conflicts: List[Conflict] = []
        state = instance.marking.node_state(self.activity_id)
        if state.is_started:
            conflicts.append(
                state_conflict(
                    f"activity {self.activity_id!r} already started ({state.value}) and cannot be moved",
                    nodes=(self.activity_id,),
                    operation=self.describe(),
                )
            )
        if not _not_started(instance, self.new_succ, introduced):
            conflicts.append(
                state_conflict(
                    f"new successor {self.new_succ!r} already started; the moved activity could "
                    "no longer run before it",
                    nodes=(self.new_succ,),
                    operation=self.describe(),
                )
            )
        return conflicts

    def affected_nodes(self) -> Set[str]:
        return {self.activity_id, self.new_pred, self.new_succ}

    def to_dict(self) -> Dict[str, Any]:
        return {
            "op": self.operation_name,
            "activity_id": self.activity_id,
            "new_pred": self.new_pred,
            "new_succ": self.new_succ,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "MoveActivity":
        return cls(
            activity_id=payload["activity_id"],
            new_pred=payload["new_pred"],
            new_succ=payload["new_succ"],
        )

    def describe(self) -> str:
        return f"moveActivity({self.activity_id} to {self.new_pred} -> {self.new_succ})"


@_register
@dataclass
class InsertSyncEdge(ChangeOperation):
    """Insert a sync edge ordering two activities of parallel branches.

    This is the ``insertSyncEdge`` of the paper's ΔT.  Compliance: the
    target must not have started yet — unless the source had already
    completed before the target started, in which case the recorded
    history happens to satisfy the new ordering anyway (relaxed trace
    equivalence at work).
    """

    operation_name: ClassVar[str] = "insert_sync_edge"

    source: str = ""
    target: str = ""

    def check_preconditions(self, schema: ProcessSchema) -> List[str]:
        problems: List[str] = []
        for node_id in (self.source, self.target):
            if not schema.has_node(node_id):
                problems.append(f"node {node_id!r} does not exist")
        if problems:
            return problems
        if self.source == self.target:
            problems.append("sync edge endpoints must differ")
        if schema.has_edge(self.source, self.target, EdgeType.SYNC):
            problems.append(f"sync edge {self.source!r} -> {self.target!r} already exists")
        if schema.control_path_exists(self.source, self.target) or schema.control_path_exists(
            self.target, self.source
        ):
            problems.append(
                f"{self.source!r} and {self.target!r} are already ordered by control edges"
            )
        return problems

    def apply(self, schema: ProcessSchema) -> None:
        schema.add_edge(Edge(source=self.source, target=self.target, edge_type=EdgeType.SYNC))

    def compliance_conflicts(
        self, instance: ProcessInstance, introduced: Optional[Set[str]] = None
    ) -> List[Conflict]:
        schema = instance.execution_schema
        missing = [n for n in (self.source, self.target) if not _exists(schema, n, introduced)]
        if missing:
            return [
                structural_conflict(
                    "sync edge endpoints no longer exist on the instance's schema",
                    nodes=tuple(missing),
                    operation=self.describe(),
                )
            ]
        if _not_started(instance, self.target, introduced):
            return []
        # target already started: only compliant when the source finished first
        source_state = instance.marking.node_state(self.source)
        if source_state in (NodeState.COMPLETED, NodeState.SKIPPED):
            completed = instance.history.completed_activities(reduced=True)
            started = instance.history.started_activities(reduced=True)
            if self.source in completed and self.target in started:
                if completed.index(self.source) <= len(started) and self._ordered_in_history(instance):
                    return []
            elif source_state is NodeState.SKIPPED:
                return []
        return [
            state_conflict(
                f"target {self.target!r} already started before source {self.source!r} completed; "
                "the new ordering constraint is violated by the recorded history",
                nodes=(self.source, self.target),
                operation=self.describe(),
            )
        ]

    def _ordered_in_history(self, instance: ProcessInstance) -> bool:
        """True when the source's completion precedes the target's start."""
        source_sequence: Optional[int] = None
        target_sequence: Optional[int] = None
        for entry in instance.history.reduced():
            if entry.activity == self.source and entry.event.value == "activity_completed":
                if source_sequence is None:
                    source_sequence = entry.sequence
            if entry.activity == self.target and entry.event.value == "activity_started":
                if target_sequence is None:
                    target_sequence = entry.sequence
        if target_sequence is None:
            return True
        return source_sequence is not None and source_sequence < target_sequence

    def affected_nodes(self) -> Set[str]:
        return {self.source, self.target}

    def inverse(self) -> "ChangeOperation":
        return DeleteSyncEdge(source=self.source, target=self.target)

    def to_dict(self) -> Dict[str, Any]:
        return {"op": self.operation_name, "source": self.source, "target": self.target}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "InsertSyncEdge":
        return cls(source=payload["source"], target=payload["target"])

    def describe(self) -> str:
        return f"insertSyncEdge({self.source} -> {self.target})"


@_register
@dataclass
class DeleteSyncEdge(ChangeOperation):
    """Remove a sync edge.  Always state-compliant (a constraint is dropped)."""

    operation_name: ClassVar[str] = "delete_sync_edge"

    source: str = ""
    target: str = ""

    def check_preconditions(self, schema: ProcessSchema) -> List[str]:
        if not schema.has_edge(self.source, self.target, EdgeType.SYNC):
            return [f"sync edge {self.source!r} -> {self.target!r} does not exist"]
        return []

    def apply(self, schema: ProcessSchema) -> None:
        schema.remove_edge(self.source, self.target, EdgeType.SYNC)

    def compliance_conflicts(
        self, instance: ProcessInstance, introduced: Optional[Set[str]] = None
    ) -> List[Conflict]:
        return []

    def affected_nodes(self) -> Set[str]:
        return {self.source, self.target}

    def inverse(self) -> "ChangeOperation":
        return InsertSyncEdge(source=self.source, target=self.target)

    def to_dict(self) -> Dict[str, Any]:
        return {"op": self.operation_name, "source": self.source, "target": self.target}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "DeleteSyncEdge":
        return cls(source=payload["source"], target=payload["target"])

    def describe(self) -> str:
        return f"deleteSyncEdge({self.source} -> {self.target})"


# --------------------------------------------------------------------------- #
# data-flow operations
# --------------------------------------------------------------------------- #


@_register
@dataclass
class AddDataElement(ChangeOperation):
    """Declare a new data element.  Always state-compliant."""

    operation_name: ClassVar[str] = "add_data_element"

    element: DataElement = None  # type: ignore[assignment]

    def check_preconditions(self, schema: ProcessSchema) -> List[str]:
        if schema.has_data_element(self.element.name):
            return [f"data element {self.element.name!r} already exists"]
        return []

    def apply(self, schema: ProcessSchema) -> None:
        schema.add_data_element(self.element)

    def compliance_conflicts(
        self, instance: ProcessInstance, introduced: Optional[Set[str]] = None
    ) -> List[Conflict]:
        return []

    def affected_nodes(self) -> Set[str]:
        return set()

    def affected_elements(self) -> Set[str]:
        return {self.element.name}

    def inverse(self) -> "ChangeOperation":
        return DeleteDataElement(name=self.element.name)

    def to_dict(self) -> Dict[str, Any]:
        return {"op": self.operation_name, "element": self.element.to_dict()}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "AddDataElement":
        return cls(element=DataElement.from_dict(payload["element"]))

    def describe(self) -> str:
        return f"addDataElement({self.element.name})"


@_register
@dataclass
class DeleteDataElement(ChangeOperation):
    """Remove a data element (and all data edges referring to it)."""

    operation_name: ClassVar[str] = "delete_data_element"

    name: str = ""

    def check_preconditions(self, schema: ProcessSchema) -> List[str]:
        problems: List[str] = []
        if not schema.has_data_element(self.name):
            problems.append(f"data element {self.name!r} does not exist")
            return problems
        mandatory_readers = [
            d.activity for d in schema.data_edges if d.element == self.name and d.is_read and d.mandatory
        ]
        if mandatory_readers:
            problems.append(
                f"data element {self.name!r} is still mandatorily read by {sorted(mandatory_readers)!r}"
            )
        return problems

    def apply(self, schema: ProcessSchema) -> None:
        schema.remove_data_element(self.name)

    def compliance_conflicts(
        self, instance: ProcessInstance, introduced: Optional[Set[str]] = None
    ) -> List[Conflict]:
        return []

    def affected_nodes(self) -> Set[str]:
        return set()

    def affected_elements(self) -> Set[str]:
        return {self.name}

    def to_dict(self) -> Dict[str, Any]:
        return {"op": self.operation_name, "name": self.name}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "DeleteDataElement":
        return cls(name=payload["name"])

    def describe(self) -> str:
        return f"deleteDataElement({self.name})"


@_register
@dataclass
class AddDataEdge(ChangeOperation):
    """Connect an activity to a data element with read or write access.

    Adding a mandatory read to an activity that already started is a state
    conflict unless the instance already holds a value for the element.
    Adding a write to a completed activity is a state conflict (the write
    never happened and cannot be made up).
    """

    operation_name: ClassVar[str] = "add_data_edge"

    activity: str = ""
    element: str = ""
    access: DataAccess = DataAccess.READ
    mandatory: bool = True

    def check_preconditions(self, schema: ProcessSchema) -> List[str]:
        problems: List[str] = []
        if not schema.has_node(self.activity):
            problems.append(f"activity {self.activity!r} does not exist")
        if not schema.has_data_element(self.element):
            problems.append(f"data element {self.element!r} does not exist")
        if not problems and any(
            d.key == (self.activity, self.element, self.access.value) for d in schema.data_edges
        ):
            problems.append(
                f"data edge {self.activity!r} {self.access.value} {self.element!r} already exists"
            )
        return problems

    def apply(self, schema: ProcessSchema) -> None:
        schema.add_data_edge(
            DataEdge(
                activity=self.activity,
                element=self.element,
                access=self.access,
                mandatory=self.mandatory,
            )
        )

    def compliance_conflicts(
        self, instance: ProcessInstance, introduced: Optional[Set[str]] = None
    ) -> List[Conflict]:
        schema = instance.execution_schema
        if not _exists(schema, self.activity, introduced):
            return [
                structural_conflict(
                    f"activity {self.activity!r} no longer exists on the instance's schema",
                    nodes=(self.activity,),
                    operation=self.describe(),
                )
            ]
        state = instance.marking.node_state(self.activity)
        if not state.is_started:
            return []
        if self.access is DataAccess.READ:
            if not self.mandatory or instance.data.has_value(self.element):
                return []
            return [
                data_conflict(
                    f"activity {self.activity!r} already started without the newly required "
                    f"input {self.element!r}",
                    element=self.element,
                    nodes=(self.activity,),
                )
            ]
        return [
            state_conflict(
                f"activity {self.activity!r} already started; its history contains no write "
                f"of {self.element!r}",
                nodes=(self.activity,),
                operation=self.describe(),
            )
        ]

    def affected_nodes(self) -> Set[str]:
        return {self.activity}

    def affected_elements(self) -> Set[str]:
        return {self.element}

    def inverse(self) -> "ChangeOperation":
        return DeleteDataEdge(activity=self.activity, element=self.element, access=self.access)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "op": self.operation_name,
            "activity": self.activity,
            "element": self.element,
            "access": self.access.value,
            "mandatory": self.mandatory,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "AddDataEdge":
        return cls(
            activity=payload["activity"],
            element=payload["element"],
            access=DataAccess(payload["access"]),
            mandatory=payload.get("mandatory", True),
        )

    def describe(self) -> str:
        return f"addDataEdge({self.activity} {self.access.value} {self.element})"


@_register
@dataclass
class DeleteDataEdge(ChangeOperation):
    """Remove a read or write data edge.  Always state-compliant."""

    operation_name: ClassVar[str] = "delete_data_edge"

    activity: str = ""
    element: str = ""
    access: DataAccess = DataAccess.READ

    def check_preconditions(self, schema: ProcessSchema) -> List[str]:
        if not any(
            d.key == (self.activity, self.element, self.access.value) for d in schema.data_edges
        ):
            return [
                f"data edge {self.activity!r} {self.access.value} {self.element!r} does not exist"
            ]
        return []

    def apply(self, schema: ProcessSchema) -> None:
        schema.remove_data_edge(self.activity, self.element, self.access)

    def compliance_conflicts(
        self, instance: ProcessInstance, introduced: Optional[Set[str]] = None
    ) -> List[Conflict]:
        return []

    def affected_nodes(self) -> Set[str]:
        return {self.activity}

    def affected_elements(self) -> Set[str]:
        return {self.element}

    def inverse(self) -> "ChangeOperation":
        return AddDataEdge(activity=self.activity, element=self.element, access=self.access)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "op": self.operation_name,
            "activity": self.activity,
            "element": self.element,
            "access": self.access.value,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "DeleteDataEdge":
        return cls(
            activity=payload["activity"],
            element=payload["element"],
            access=DataAccess(payload["access"]),
        )

    def describe(self) -> str:
        return f"deleteDataEdge({self.activity} {self.access.value} {self.element})"


# --------------------------------------------------------------------------- #
# attribute changes
# --------------------------------------------------------------------------- #


@_register
@dataclass
class ChangeActivityAttributes(ChangeOperation):
    """Change descriptive attributes of an activity (name, role, duration).

    Attribute changes never touch control or data flow and are compliant
    for every instance state; changing the staff assignment of an already
    completed activity simply has no retroactive effect.
    """

    operation_name: ClassVar[str] = "change_activity_attributes"

    activity_id: str = ""
    name: Optional[str] = None
    role: Optional[str] = None
    duration: Optional[float] = None

    def check_preconditions(self, schema: ProcessSchema) -> List[str]:
        if not schema.has_node(self.activity_id):
            return [f"activity {self.activity_id!r} does not exist"]
        if not schema.node(self.activity_id).is_activity:
            return [f"{self.activity_id!r} is not an activity node"]
        if self.name is None and self.role is None and self.duration is None:
            return ["no attribute change requested"]
        return []

    def apply(self, schema: ProcessSchema) -> None:
        node = schema.node(self.activity_id)
        updated = replace(
            node,
            name=self.name if self.name is not None else node.name,
            staff_assignment=self.role if self.role is not None else node.staff_assignment,
            duration=self.duration if self.duration is not None else node.duration,
        )
        schema.replace_node(updated)

    def compliance_conflicts(
        self, instance: ProcessInstance, introduced: Optional[Set[str]] = None
    ) -> List[Conflict]:
        return []

    def affected_nodes(self) -> Set[str]:
        return {self.activity_id}

    def to_dict(self) -> Dict[str, Any]:
        return {
            "op": self.operation_name,
            "activity_id": self.activity_id,
            "name": self.name,
            "role": self.role,
            "duration": self.duration,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ChangeActivityAttributes":
        return cls(
            activity_id=payload["activity_id"],
            name=payload.get("name"),
            role=payload.get("role"),
            duration=payload.get("duration"),
        )

    def describe(self) -> str:
        return f"changeAttributes({self.activity_id})"
