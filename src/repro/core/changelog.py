"""Change logs — the recorded "bias" of instances and type changes.

A :class:`ChangeLog` is an ordered list of change operations.  Two kinds
of change logs exist in ADEPT2:

* the **bias** ΔI of an ad-hoc modified instance (the deviations applied
  to this single instance so far), and
* a **type change** ΔT transforming schema version ``V`` into ``V+1``.

The change log knows how to apply itself to a schema, how to compose with
further changes, how to serialise itself for persistence, and how to
detect **semantic overlap** with another change log (the ingredient of
the semantic-conflict check when type changes are propagated to biased
instances).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Set

from repro.core.operations import ChangeOperation, OperationError, operation_from_dict
from repro.schema.graph import ProcessSchema


class ChangeLog:
    """An ordered, append-only list of change operations."""

    def __init__(self, operations: Optional[Iterable[ChangeOperation]] = None, comment: str = "") -> None:
        self._operations: List[ChangeOperation] = list(operations or [])
        self.comment = comment

    # ------------------------------------------------------------------ #
    # list behaviour
    # ------------------------------------------------------------------ #

    @property
    def operations(self) -> List[ChangeOperation]:
        return list(self._operations)

    def append(self, operation: ChangeOperation) -> None:
        self._operations.append(operation)

    def extend(self, operations: Iterable[ChangeOperation]) -> None:
        self._operations.extend(operations)

    def compose(self, other: "ChangeLog") -> "ChangeLog":
        """A new change log applying this log first, then ``other``."""
        return ChangeLog(self._operations + other._operations, comment=self.comment or other.comment)

    def simplify(self) -> "ChangeLog":
        """A new change log with cancelling operation pairs removed (bias purging).

        When an operation is later followed by its exact inverse (e.g. an
        ad-hoc inserted activity is deleted again, or a sync edge is added
        and removed), both operations are dropped — provided no operation
        in between touches the same schema elements, which keeps the
        simplification semantics-preserving.  The resulting log produces
        the same schema with fewer entries, which shrinks substitution
        blocks and speeds up overlap checks.
        """
        operations = list(self._operations)
        changed = True
        while changed:
            changed = False
            for first_index in range(len(operations)):
                if changed:
                    break
                first = operations[first_index]
                try:
                    inverse_payload = first.inverse().to_dict()
                except NotImplementedError:
                    continue
                touched = first.affected_nodes() | first.added_node_ids() | first.removed_node_ids()
                elements = first.affected_elements()
                for second_index in range(first_index + 1, len(operations)):
                    second = operations[second_index]
                    if second.to_dict() == inverse_payload:
                        del operations[second_index]
                        del operations[first_index]
                        changed = True
                        break
                    second_touched = (
                        second.affected_nodes() | second.added_node_ids() | second.removed_node_ids()
                    )
                    if touched & second_touched or elements & second.affected_elements():
                        break
        return ChangeLog(operations, comment=self.comment)

    def __len__(self) -> int:
        return len(self._operations)

    def __iter__(self) -> Iterator[ChangeOperation]:
        return iter(self._operations)

    def __bool__(self) -> bool:
        return bool(self._operations)

    # ------------------------------------------------------------------ #
    # application
    # ------------------------------------------------------------------ #

    def apply_to(self, schema: ProcessSchema, check: bool = True) -> ProcessSchema:
        """Apply all operations to a *copy* of ``schema`` and return it.

        With ``check=True`` each operation's preconditions are enforced;
        a violated precondition raises :class:`OperationError` and leaves
        the input schema untouched (the copy is discarded).
        """
        changed = schema.copy()
        for operation in self._operations:
            if check:
                operation.apply_checked(changed)
            else:
                operation.apply(changed)
        return changed

    # ------------------------------------------------------------------ #
    # overlap analysis (semantic conflicts)
    # ------------------------------------------------------------------ #

    def affected_nodes(self) -> Set[str]:
        """Existing node ids any operation of this log touches."""
        nodes: Set[str] = set()
        for operation in self._operations:
            nodes |= operation.affected_nodes()
        return nodes

    def added_node_ids(self) -> Set[str]:
        """Node ids introduced by this log."""
        nodes: Set[str] = set()
        for operation in self._operations:
            nodes |= operation.added_node_ids()
        return nodes

    def removed_node_ids(self) -> Set[str]:
        """Node ids removed by this log."""
        nodes: Set[str] = set()
        for operation in self._operations:
            nodes |= operation.removed_node_ids()
        return nodes

    def affected_elements(self) -> Set[str]:
        """Data element names any operation of this log touches."""
        elements: Set[str] = set()
        for operation in self._operations:
            elements |= operation.affected_elements()
        return elements

    def overlaps_with(self, other: "ChangeLog") -> Set[str]:
        """Schema elements on which both change logs operate destructively.

        Overlap is reported when one log *removes or introduces* an element
        the other log also modifies, removes or introduces — the situation
        in which the combined intent of a type change and an instance bias
        is ambiguous (semantic conflict).  Merely touching the same
        neighbour nodes (e.g. both inserting after the same activity) is
        not an overlap.
        """
        mine_strong = self.removed_node_ids() | self.added_node_ids()
        theirs_strong = other.removed_node_ids() | other.added_node_ids()
        overlap = set()
        overlap |= mine_strong & (theirs_strong | other.affected_nodes())
        overlap |= theirs_strong & (mine_strong | self.affected_nodes())
        return overlap

    # ------------------------------------------------------------------ #
    # serialisation
    # ------------------------------------------------------------------ #

    def to_dict(self) -> Dict[str, Any]:
        return {
            "comment": self.comment,
            "operations": [operation.to_dict() for operation in self._operations],
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ChangeLog":
        return cls(
            operations=[operation_from_dict(item) for item in payload.get("operations", [])],
            comment=payload.get("comment", ""),
        )

    def describe(self) -> str:
        """Multi-line rendering of all operations."""
        if not self._operations:
            return "(empty change log)"
        return "\n".join(f"  {index + 1}. {op.describe()}" for index, op in enumerate(self._operations))

    def __repr__(self) -> str:
        return f"ChangeLog({len(self._operations)} operation(s))"
