"""Canonical process templates used by the paper, the examples and tests.

The most important template is the **online order process** of the
paper's Figures 1 and 3: after order entry, order confirmation runs in
parallel to composing and packing the goods, followed by delivery.  The
module also provides the paper's type change ΔT (insert ``send_questions``
plus a sync edge), the ad-hoc bias that makes instance I2 structurally
conflicting, and domain templates for the e-health and container
transportation applications the paper cites as deployments.
"""

from __future__ import annotations

from typing import List

from repro.schema.builder import SchemaBuilder
from repro.schema.data import DataType
from repro.schema.graph import ProcessSchema


def online_order_process(version: int = 1, schema_id: str = "online_order_v1") -> ProcessSchema:
    """The paper's online ordering process (schema S / version V1).

    Structure::

        start - get_order - collect_data - AND( confirm_order |
                                                compose_order - pack_goods )
              - deliver_goods - end
    """
    builder = SchemaBuilder(schema_id, name="online_order", version=version)
    builder.data("order", DataType.DOCUMENT, description="the customer order")
    builder.data("customer", DataType.DOCUMENT, description="customer master data")
    builder.data("confirmation", DataType.BOOLEAN, description="order confirmed?")
    builder.data("shipment", DataType.DOCUMENT, description="packed shipment")
    builder.activity("get_order", role="clerk", writes=["order"])
    builder.activity("collect_data", role="clerk", reads=["order"], writes=["customer"])
    builder.parallel(
        [
            lambda seq: seq.activity(
                "confirm_order", role="sales", reads=["order", "customer"], writes=["confirmation"]
            ),
            lambda seq: (
                seq.activity("compose_order", role="warehouse", reads=["order"])
                .activity("pack_goods", role="warehouse", reads=["order"], writes=["shipment"])
            ),
        ],
        label="fulfil",
    )
    builder.activity(
        "deliver_goods", role="logistics", reads=["shipment", "confirmation"]
    )
    return builder.build()


def patient_treatment_process(schema_id: str = "patient_treatment_v1") -> ProcessSchema:
    """An e-health treatment process with a diagnostic loop and an XOR block.

    Mirrors the kind of clinical pathway the ADEPT group used in its
    e-health deployments: admission, a repeatable examine/treat cycle, a
    decision between surgery and medication, and discharge.
    """
    builder = SchemaBuilder(schema_id, name="patient_treatment", version=1)
    builder.data("patient", DataType.DOCUMENT)
    builder.data("diagnosis", DataType.STRING)
    builder.data("cured", DataType.BOOLEAN, default=False)
    builder.data("surgery_needed", DataType.BOOLEAN, default=False)
    builder.activity("admit_patient", role="nurse", writes=["patient"])
    builder.loop(
        lambda seq: (
            seq.activity("examine_patient", role="physician", reads=["patient"], writes=["diagnosis"])
            .activity("perform_treatment", role="physician", reads=["diagnosis"], writes=["cured"])
        ),
        condition="not cured",
        label="treatment_cycle",
        max_iterations=10,
    )
    builder.conditional(
        [
            ("surgery_needed", lambda seq: seq.activity("schedule_surgery", role="surgeon", reads=["diagnosis"])),
            (None, lambda seq: seq.activity("prescribe_medication", role="physician", reads=["diagnosis"])),
        ],
        label="therapy",
    )
    builder.activity("discharge_patient", role="nurse", reads=["patient"])
    return builder.build()


def container_transport_process(schema_id: str = "container_transport_v1") -> ProcessSchema:
    """A container transportation process (after Bassil et al., BPM'04).

    Booking and customs clearance run in parallel to vessel planning; the
    actual transport leg repeats until the container reaches its final
    destination.
    """
    builder = SchemaBuilder(schema_id, name="container_transport", version=1)
    builder.data("booking", DataType.DOCUMENT)
    builder.data("customs_cleared", DataType.BOOLEAN, default=False)
    builder.data("route", DataType.DOCUMENT)
    builder.data("arrived", DataType.BOOLEAN, default=False)
    builder.activity("register_booking", role="dispatcher", writes=["booking"])
    builder.parallel(
        [
            lambda seq: (
                seq.activity("clear_customs", role="customs", reads=["booking"], writes=["customs_cleared"])
            ),
            lambda seq: (
                seq.activity("plan_route", role="dispatcher", reads=["booking"], writes=["route"])
                .activity("assign_vessel", role="dispatcher", reads=["route"])
            ),
        ],
        label="prepare",
    )
    builder.loop(
        lambda seq: (
            seq.activity("transport_leg", role="carrier", reads=["route"], writes=["arrived"])
            .activity("report_position", role="carrier", reads=["route"])
        ),
        condition="not arrived",
        label="journey",
        max_iterations=20,
    )
    builder.activity("deliver_container", role="carrier", reads=["booking", "customs_cleared"])
    return builder.build()


def credit_application_process(schema_id: str = "credit_application_v1") -> ProcessSchema:
    """A simple credit application process with an approval decision."""
    builder = SchemaBuilder(schema_id, name="credit_application", version=1)
    builder.data("application", DataType.DOCUMENT)
    builder.data("score", DataType.INTEGER, default=0)
    builder.data("approved", DataType.BOOLEAN, default=False)
    builder.activity("receive_application", role="clerk", writes=["application"])
    builder.parallel(
        [
            lambda seq: seq.activity("check_identity", role="clerk", reads=["application"]),
            lambda seq: seq.activity("compute_score", role="analyst", reads=["application"], writes=["score"]),
        ],
        label="checks",
    )
    builder.conditional(
        [
            ("score >= 50", lambda seq: seq.activity("approve_credit", role="manager", writes=["approved"])),
            (None, lambda seq: seq.activity("reject_credit", role="manager", writes=["approved"])),
        ],
        label="decision",
    )
    builder.activity("notify_customer", role="clerk", reads=["application", "approved"])
    return builder.build()


def sequential_process(length: int = 5, schema_id: str = "sequence_v1") -> ProcessSchema:
    """A purely sequential process of ``length`` activities (test helper)."""
    if length < 1:
        raise ValueError("length must be >= 1")
    builder = SchemaBuilder(schema_id, name="sequence", version=1)
    for index in range(1, length + 1):
        builder.activity(f"step_{index}", role="worker")
    return builder.build()


def loop_process(body_length: int = 2, schema_id: str = "loop_v1", max_iterations: int = 50) -> ProcessSchema:
    """A process with one loop of ``body_length`` activities (test helper)."""
    if body_length < 1:
        raise ValueError("body_length must be >= 1")
    builder = SchemaBuilder(schema_id, name="loop_process", version=1)
    builder.data("done", DataType.BOOLEAN, default=False)
    builder.activity("prepare", role="worker")

    def body(seq):
        for index in range(1, body_length + 1):
            writes = ["done"] if index == body_length else ()
            seq.activity(f"body_{index}", role="worker", writes=writes)

    builder.loop(body, condition="not done", label="main", max_iterations=max_iterations)
    builder.activity("finish", role="worker")
    return builder.build()


def all_templates() -> List[ProcessSchema]:
    """Every named template (used by tests and the verification bench)."""
    return [
        online_order_process(),
        patient_treatment_process(),
        container_transport_process(),
        credit_application_process(),
        sequential_process(),
        loop_process(),
    ]
