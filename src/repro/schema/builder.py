"""Fluent construction of block-structured process schemas.

The :class:`SchemaBuilder` guarantees block structure by construction:
parallel and conditional blocks always receive a matching split and join,
loops always receive a loop-start/loop-end pair with a loop-back edge.
Sync edges and data flow are added on top.  ``build()`` runs the full
buildtime verification (:mod:`repro.verification`) so that every schema
handed to the runtime or to change operations is known to be correct —
the prerequisite for dynamic changes that the paper stresses.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.schema.data import DataAccess, DataEdge, DataElement, DataType
from repro.schema.edges import Edge, EdgeType
from repro.schema.graph import ProcessSchema, SchemaError
from repro.schema.nodes import Node, NodeType


class BuilderError(SchemaError):
    """Raised when the builder is used inconsistently."""


BranchSpec = Callable[["SequenceBuilder"], Any]


class SequenceBuilder:
    """Builds one sequential stretch of a schema (a branch or the top level).

    All methods return ``self`` so calls can be chained:
    ``seq.activity("a").activity("b")``.
    """

    def __init__(self, parent: "SchemaBuilder", entry: str) -> None:
        self._parent = parent
        self._schema = parent._schema
        self._tail = entry
        self._appended = 0

    @property
    def tail(self) -> str:
        """Id of the node new elements will be attached to."""
        return self._tail

    @property
    def appended_count(self) -> int:
        """Number of elements appended to this sequence so far."""
        return self._appended

    def _append_node(self, node: Node, guard: Optional[str] = None) -> None:
        self._schema.add_node(node)
        self._schema.add_edge(
            Edge(source=self._tail, target=node.node_id, edge_type=EdgeType.CONTROL, guard=guard)
        )
        self._tail = node.node_id
        self._appended += 1

    def activity(
        self,
        node_id: str,
        name: str = "",
        role: Optional[str] = None,
        duration: float = 1.0,
        reads: Sequence[str] = (),
        writes: Sequence[str] = (),
        optional_reads: Sequence[str] = (),
        application: Optional[str] = None,
    ) -> "SequenceBuilder":
        """Append an activity node and its data edges to the sequence."""
        node = Node(
            node_id=node_id,
            node_type=NodeType.ACTIVITY,
            name=name or node_id,
            staff_assignment=role,
            duration=duration,
            application=application,
        )
        self._append_node(node)
        for element in reads:
            self._parent._ensure_data_element(element)
            self._schema.add_data_edge(
                DataEdge(activity=node_id, element=element, access=DataAccess.READ, mandatory=True)
            )
        for element in optional_reads:
            self._parent._ensure_data_element(element)
            self._schema.add_data_edge(
                DataEdge(activity=node_id, element=element, access=DataAccess.READ, mandatory=False)
            )
        for element in writes:
            self._parent._ensure_data_element(element)
            self._schema.add_data_edge(
                DataEdge(activity=node_id, element=element, access=DataAccess.WRITE)
            )
        return self

    def parallel(self, branches: Sequence[BranchSpec], label: str = "") -> "SequenceBuilder":
        """Append an AND block with one branch per callable in ``branches``."""
        if len(branches) < 2:
            raise BuilderError("a parallel block needs at least two branches")
        split_id = self._parent._fresh_id("and_split", label)
        join_id = self._parent._fresh_id("and_join", label)
        self._append_node(Node(node_id=split_id, node_type=NodeType.AND_SPLIT, name=label or split_id))
        self._close_branches(branches, split_id, join_id, NodeType.AND_JOIN, guards=None)
        return self

    def conditional(
        self,
        branches: Sequence[Tuple[Optional[str], BranchSpec]],
        label: str = "",
    ) -> "SequenceBuilder":
        """Append an XOR block; each branch is a ``(guard, spec)`` pair.

        Exactly one branch may use ``None`` as guard to act as the default
        branch taken when no other guard evaluates to true.
        """
        if len(branches) < 2:
            raise BuilderError("a conditional block needs at least two branches")
        defaults = [guard for guard, _ in branches if guard is None]
        if len(defaults) > 1:
            raise BuilderError("a conditional block may have at most one default branch")
        split_id = self._parent._fresh_id("xor_split", label)
        join_id = self._parent._fresh_id("xor_join", label)
        self._append_node(Node(node_id=split_id, node_type=NodeType.XOR_SPLIT, name=label or split_id))
        guards = [guard for guard, _ in branches]
        specs = [spec for _, spec in branches]
        self._close_branches(specs, split_id, join_id, NodeType.XOR_JOIN, guards=guards)
        return self

    def loop(
        self,
        body: BranchSpec,
        condition: str,
        label: str = "",
        max_iterations: int = 100,
    ) -> "SequenceBuilder":
        """Append a loop block repeating ``body`` while ``condition`` holds.

        ``max_iterations`` is a safety bound enforced by the runtime engine
        to keep simulated executions finite.
        """
        start_id = self._parent._fresh_id("loop_start", label)
        end_id = self._parent._fresh_id("loop_end", label)
        self._append_node(
            Node(
                node_id=start_id,
                node_type=NodeType.LOOP_START,
                name=label or start_id,
                properties={"max_iterations": max_iterations},
            )
        )
        branch_builder = SequenceBuilder(self._parent, start_id)
        body(branch_builder)
        if branch_builder.appended_count == 0:
            raise BuilderError("a loop body must contain at least one node")
        self._schema.add_node(Node(node_id=end_id, node_type=NodeType.LOOP_END, name=label or end_id))
        self._schema.add_edge(Edge(source=branch_builder.tail, target=end_id, edge_type=EdgeType.CONTROL))
        self._schema.add_edge(
            Edge(source=end_id, target=start_id, edge_type=EdgeType.LOOP, loop_condition=condition)
        )
        self._tail = end_id
        self._appended += 1
        return self

    def _close_branches(
        self,
        branches: Sequence[BranchSpec],
        split_id: str,
        join_id: str,
        join_type: NodeType,
        guards: Optional[Sequence[Optional[str]]],
    ) -> None:
        branch_tails: List[str] = []
        for index, spec in enumerate(branches):
            targets_before = {e.target for e in self._schema.edges_from(split_id, EdgeType.CONTROL)}
            branch_builder = SequenceBuilder(self._parent, split_id)
            spec(branch_builder)
            if branch_builder.appended_count == 0:
                raise BuilderError("branches must contain at least one node")
            if guards is not None and guards[index] is not None:
                new_entries = [
                    e
                    for e in self._schema.edges_from(split_id, EdgeType.CONTROL)
                    if e.target not in targets_before
                ]
                if len(new_entries) != 1:
                    raise BuilderError(
                        f"could not identify the entry edge of branch {index} of {split_id!r}"
                    )
                self._schema.remove_edge(split_id, new_entries[0].target, EdgeType.CONTROL)
                self._schema.add_edge(new_entries[0].with_guard(guards[index]))
            branch_tails.append(branch_builder.tail)
        self._schema.add_node(Node(node_id=join_id, node_type=join_type, name=join_id))
        for tail in branch_tails:
            self._schema.add_edge(Edge(source=tail, target=join_id, edge_type=EdgeType.CONTROL))
        self._tail = join_id


class SchemaBuilder(SequenceBuilder):
    """Top-level builder producing a verified :class:`ProcessSchema`.

    Example::

        builder = SchemaBuilder("online_order", name="Online order", version=1)
        builder.data("order", DataType.DOCUMENT)
        builder.activity("get_order", writes=["order"])
        builder.activity("confirm_order", reads=["order"])
        schema = builder.build()
    """

    def __init__(self, schema_id: str, name: str = "", version: int = 1) -> None:
        self._schema = ProcessSchema(schema_id=schema_id, name=name, version=version)
        self._counter = 0
        start = Node(node_id="start", node_type=NodeType.START, name="start")
        self._schema.add_node(start)
        super().__init__(self, entry="start")

    def _fresh_id(self, prefix: str, label: str = "") -> str:
        self._counter += 1
        suffix = f"_{label}" if label else ""
        return f"{prefix}{suffix}_{self._counter}"

    def _ensure_data_element(self, name: str) -> None:
        if not self._schema.has_data_element(name):
            self._schema.add_data_element(DataElement(name=name))

    def data(
        self,
        name: str,
        data_type: DataType = DataType.STRING,
        default: Optional[Any] = None,
        description: str = "",
    ) -> "SchemaBuilder":
        """Declare a typed data element."""
        self._schema.add_data_element(
            DataElement(name=name, data_type=data_type, default=default, description=description)
        )
        return self

    def sync(self, source: str, target: str) -> "SchemaBuilder":
        """Add a sync edge between two already-added nodes."""
        self._schema.add_edge(Edge(source=source, target=target, edge_type=EdgeType.SYNC))
        return self

    def build(self, validate: bool = True) -> ProcessSchema:
        """Close the schema with its end node and optionally verify it."""
        if self._schema.has_node("end"):
            raise BuilderError("build() must only be called once")
        self._schema.add_node(Node(node_id="end", node_type=NodeType.END, name="end"))
        self._schema.add_edge(Edge(source=self._tail, target="end", edge_type=EdgeType.CONTROL))
        if validate:
            from repro.verification.verifier import SchemaVerifier

            report = SchemaVerifier().verify(self._schema)
            if not report.is_correct:
                raise BuilderError(
                    "built schema failed verification:\n" + report.summary()
                )
        return self._schema
