"""The :class:`ProcessSchema` graph — the central schema object of ADEPT2.

A process schema (also called a *process template* in the paper) combines
nodes, control/sync/loop edges and the data-flow model into one graph.
Schemas are identified by a process type name and a version counter so
the schema repository (:mod:`repro.storage.repository`) can manage
schema evolution (V1, V2, ... in the paper's Fig. 3).

The class offers purely structural queries (successors, predecessors,
reachability, topological order); correctness checks live in
:mod:`repro.verification` and change operations in :mod:`repro.core`.
"""

from __future__ import annotations

import copy as _copy
from typing import Any, Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Set, Tuple

from repro.errors import ReproError
from repro.schema.data import DataEdge, DataElement
from repro.schema.edges import Edge, EdgeType
from repro.schema.index import SchemaIndex, indexing_enabled
from repro.schema.nodes import Node, NodeType


class SchemaError(ReproError):
    """Raised when a schema is manipulated in a structurally invalid way."""


class ProcessSchema:
    """A block-structured WSM-net process schema.

    Args:
        schema_id: Unique identifier of this schema object.
        name: Process type name (e.g. ``"online_order"``).
        version: Version counter within the process type (1-based).

    The schema is mutable by design: change operations and the builder add
    and remove nodes and edges.  Runtime components never mutate schemas;
    they hold references and instance-specific markings instead (the
    redundancy-free storage representation of the paper's Fig. 2).
    """

    def __init__(self, schema_id: str, name: str = "", version: int = 1) -> None:
        if not schema_id:
            raise SchemaError("schema_id must be non-empty")
        if version < 1:
            raise SchemaError(f"version must be >= 1, got {version}")
        self.schema_id = schema_id
        self.name = name or schema_id
        self.version = version
        self._nodes: Dict[str, Node] = {}
        self._edges: Dict[Tuple[str, str, str], Edge] = {}
        self._data_elements: Dict[str, DataElement] = {}
        self._data_edges: Dict[Tuple[str, str, str], DataEdge] = {}
        self._generation: int = 0
        self._index: Optional[SchemaIndex] = None

    # ------------------------------------------------------------------ #
    # compiled index and invalidation
    # ------------------------------------------------------------------ #

    @property
    def generation(self) -> int:
        """Monotonic counter bumped by every structural mutation."""
        return self._generation

    @property
    def index(self) -> SchemaIndex:
        """The compiled :class:`SchemaIndex` of this schema.

        Rebuilt lazily whenever the schema mutated since the index was
        compiled (generation-counter invalidation).  All structural query
        methods of the schema answer from this index; hot-path callers
        hold it directly to reuse its cached structures across many
        queries.
        """
        index = self._index
        if index is None or index.generation != self._generation:
            index = SchemaIndex(self)
            self._index = index
        return index

    def _bump(self) -> None:
        """Invalidate the compiled index after a structural mutation."""
        self._generation += 1

    def raw_edges(self) -> Iterable[Edge]:
        """All edges in insertion order, without copying (index builder)."""
        return self._edges.values()

    def raw_data_edges(self) -> Iterable[DataEdge]:
        """All data edges in insertion order, without copying (index builder)."""
        return self._data_edges.values()

    # ------------------------------------------------------------------ #
    # basic collection accessors
    # ------------------------------------------------------------------ #

    @property
    def nodes(self) -> Dict[str, Node]:
        """Mapping of node id to node (do not mutate directly)."""
        return self._nodes

    @property
    def edges(self) -> List[Edge]:
        """All edges of the schema in insertion order."""
        return list(self._edges.values())

    @property
    def data_elements(self) -> Dict[str, DataElement]:
        """Mapping of data element name to element."""
        return self._data_elements

    @property
    def data_edges(self) -> List[DataEdge]:
        """All data edges of the schema."""
        return list(self._data_edges.values())

    def node_ids(self) -> List[str]:
        """All node ids in insertion order."""
        return list(self._nodes)

    def activity_ids(self) -> List[str]:
        """Ids of all activity (non-structural) nodes."""
        return [n.node_id for n in self._nodes.values() if n.is_activity]

    def node(self, node_id: str) -> Node:
        """Return the node with ``node_id`` or raise :class:`SchemaError`."""
        try:
            return self._nodes[node_id]
        except KeyError:
            raise SchemaError(f"unknown node: {node_id!r}") from None

    def has_node(self, node_id: str) -> bool:
        return node_id in self._nodes

    def has_edge(self, source: str, target: str, edge_type: EdgeType = EdgeType.CONTROL) -> bool:
        return (source, target, edge_type.value) in self._edges

    def edge(self, source: str, target: str, edge_type: EdgeType = EdgeType.CONTROL) -> Edge:
        """Return the edge identified by its endpoints and type."""
        try:
            return self._edges[(source, target, edge_type.value)]
        except KeyError:
            raise SchemaError(
                f"unknown {edge_type.value} edge: {source!r} -> {target!r}"
            ) from None

    def has_data_element(self, name: str) -> bool:
        return name in self._data_elements

    def data_element(self, name: str) -> DataElement:
        try:
            return self._data_elements[name]
        except KeyError:
            raise SchemaError(f"unknown data element: {name!r}") from None

    # ------------------------------------------------------------------ #
    # mutation
    # ------------------------------------------------------------------ #

    def add_node(self, node: Node) -> None:
        """Add a node; its id must not already exist."""
        if node.node_id in self._nodes:
            raise SchemaError(f"duplicate node id: {node.node_id!r}")
        self._nodes[node.node_id] = node
        self._bump()

    def replace_node(self, node: Node) -> None:
        """Replace an existing node (same id) with a new definition."""
        if node.node_id not in self._nodes:
            raise SchemaError(f"unknown node: {node.node_id!r}")
        self._nodes[node.node_id] = node
        self._bump()

    def remove_node(self, node_id: str) -> None:
        """Remove a node and every control/sync/loop/data edge touching it."""
        if node_id not in self._nodes:
            raise SchemaError(f"unknown node: {node_id!r}")
        del self._nodes[node_id]
        self._edges = {
            key: edge
            for key, edge in self._edges.items()
            if edge.source != node_id and edge.target != node_id
        }
        self._data_edges = {
            key: dedge
            for key, dedge in self._data_edges.items()
            if dedge.activity != node_id
        }
        self._bump()

    def add_edge(self, edge: Edge) -> None:
        """Add an edge; endpoints must exist and the edge must be new."""
        if edge.source not in self._nodes:
            raise SchemaError(f"edge source does not exist: {edge.source!r}")
        if edge.target not in self._nodes:
            raise SchemaError(f"edge target does not exist: {edge.target!r}")
        if edge.key in self._edges:
            raise SchemaError(
                f"duplicate {edge.edge_type.value} edge: {edge.source!r} -> {edge.target!r}"
            )
        self._edges[edge.key] = edge
        self._bump()

    def remove_edge(self, source: str, target: str, edge_type: EdgeType = EdgeType.CONTROL) -> None:
        """Remove the edge identified by its endpoints and type."""
        key = (source, target, edge_type.value)
        if key not in self._edges:
            raise SchemaError(f"unknown {edge_type.value} edge: {source!r} -> {target!r}")
        del self._edges[key]
        self._bump()

    def replace_edge(self, edge: Edge) -> None:
        """Replace an existing edge (same key) with a new definition."""
        if edge.key not in self._edges:
            raise SchemaError(
                f"unknown {edge.edge_type.value} edge: {edge.source!r} -> {edge.target!r}"
            )
        self._edges[edge.key] = edge
        self._bump()

    def add_data_element(self, element: DataElement) -> None:
        if element.name in self._data_elements:
            raise SchemaError(f"duplicate data element: {element.name!r}")
        self._data_elements[element.name] = element
        self._bump()

    def remove_data_element(self, name: str) -> None:
        """Remove a data element and all data edges referring to it."""
        if name not in self._data_elements:
            raise SchemaError(f"unknown data element: {name!r}")
        del self._data_elements[name]
        self._data_edges = {
            key: dedge for key, dedge in self._data_edges.items() if dedge.element != name
        }
        self._bump()

    def add_data_edge(self, data_edge: DataEdge) -> None:
        if data_edge.activity not in self._nodes:
            raise SchemaError(f"data edge activity does not exist: {data_edge.activity!r}")
        if data_edge.element not in self._data_elements:
            raise SchemaError(f"data edge element does not exist: {data_edge.element!r}")
        if data_edge.key in self._data_edges:
            raise SchemaError(
                f"duplicate data edge: {data_edge.activity!r} {data_edge.access.value} "
                f"{data_edge.element!r}"
            )
        self._data_edges[data_edge.key] = data_edge
        self._bump()

    def remove_data_edge(self, activity: str, element: str, access) -> None:
        key = (activity, element, getattr(access, "value", access))
        if key not in self._data_edges:
            raise SchemaError(f"unknown data edge: {key!r}")
        del self._data_edges[key]
        self._bump()

    # ------------------------------------------------------------------ #
    # structural queries
    # ------------------------------------------------------------------ #

    def start_node(self) -> Node:
        """The unique start node of the schema."""
        if indexing_enabled():
            return self.node(self.index.start_node_id())
        starts = [n for n in self._nodes.values() if n.node_type is NodeType.START]
        if len(starts) != 1:
            raise SchemaError(f"schema must have exactly one start node, found {len(starts)}")
        return starts[0]

    def end_node(self) -> Node:
        """The unique end node of the schema."""
        if indexing_enabled():
            return self.node(self.index.end_node_id())
        ends = [n for n in self._nodes.values() if n.node_type is NodeType.END]
        if len(ends) != 1:
            raise SchemaError(f"schema must have exactly one end node, found {len(ends)}")
        return ends[0]

    def edges_from(self, node_id: str, edge_type: Optional[EdgeType] = None) -> List[Edge]:
        """Outgoing edges of ``node_id``, optionally filtered by type."""
        if indexing_enabled():
            return self.index.edges_from(node_id, edge_type)
        return [
            e
            for e in self._edges.values()
            if e.source == node_id and (edge_type is None or e.edge_type is edge_type)
        ]

    def edges_to(self, node_id: str, edge_type: Optional[EdgeType] = None) -> List[Edge]:
        """Incoming edges of ``node_id``, optionally filtered by type."""
        if indexing_enabled():
            return self.index.edges_to(node_id, edge_type)
        return [
            e
            for e in self._edges.values()
            if e.target == node_id and (edge_type is None or e.edge_type is edge_type)
        ]

    def successors(self, node_id: str, edge_type: EdgeType = EdgeType.CONTROL) -> List[str]:
        """Direct successors of ``node_id`` via edges of ``edge_type``."""
        return [e.target for e in self.edges_from(node_id, edge_type)]

    def predecessors(self, node_id: str, edge_type: EdgeType = EdgeType.CONTROL) -> List[str]:
        """Direct predecessors of ``node_id`` via edges of ``edge_type``."""
        return [e.source for e in self.edges_to(node_id, edge_type)]

    def control_edges(self) -> List[Edge]:
        if indexing_enabled():
            return self.index.control_edges()
        return [e for e in self._edges.values() if e.is_control]

    def sync_edges(self) -> List[Edge]:
        if indexing_enabled():
            return self.index.sync_edges()
        return [e for e in self._edges.values() if e.is_sync]

    def loop_edges(self) -> List[Edge]:
        if indexing_enabled():
            return self.index.loop_edges()
        return [e for e in self._edges.values() if e.is_loop]

    def transitive_successors(self, node_id: str, include_sync: bool = False) -> Set[str]:
        """All nodes reachable from ``node_id`` via control (and optionally
        sync) edges, excluding loop-back edges and the node itself."""
        return self._reach(node_id, forward=True, include_sync=include_sync)

    def transitive_predecessors(self, node_id: str, include_sync: bool = False) -> Set[str]:
        """All nodes from which ``node_id`` is reachable via control (and
        optionally sync) edges, excluding loop-back edges and the node itself."""
        return self._reach(node_id, forward=False, include_sync=include_sync)

    def _reach(self, node_id: str, forward: bool, include_sync: bool) -> Set[str]:
        if indexing_enabled():
            return set(self.index._reach(node_id, forward=forward, include_sync=include_sync))
        self.node(node_id)
        seen: Set[str] = set()
        frontier = [node_id]
        while frontier:
            current = frontier.pop()
            if forward:
                neighbours = self.successors(current, EdgeType.CONTROL)
                if include_sync:
                    neighbours += self.successors(current, EdgeType.SYNC)
            else:
                neighbours = self.predecessors(current, EdgeType.CONTROL)
                if include_sync:
                    neighbours += self.predecessors(current, EdgeType.SYNC)
            for nxt in neighbours:
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        seen.discard(node_id)
        return seen

    def is_predecessor(self, earlier: str, later: str, include_sync: bool = True) -> bool:
        """True when ``earlier`` precedes ``later`` in the (acyclic) flow."""
        return later in self.transitive_successors(earlier, include_sync=include_sync)

    def are_parallel(self, first: str, second: str) -> bool:
        """True when neither node precedes the other (concurrent nodes)."""
        if first == second:
            return False
        return not self.is_predecessor(first, second) and not self.is_predecessor(second, first)

    def topological_order(self, include_sync: bool = True) -> List[str]:
        """Node ids in a topological order of the control (+sync) graph.

        Loop edges are ignored, because they are the only intentional
        cycles of a correct WSM net.  Raises :class:`SchemaError` if the
        remaining graph is cyclic (which verification reports as a
        deadlock-causing cycle).
        """
        if indexing_enabled():
            return self.index.topological_order(include_sync)
        indegree: Dict[str, int] = {node_id: 0 for node_id in self._nodes}
        adjacency: Dict[str, List[str]] = {node_id: [] for node_id in self._nodes}
        for edge in self._edges.values():
            if edge.is_loop:
                continue
            if edge.is_sync and not include_sync:
                continue
            adjacency[edge.source].append(edge.target)
            indegree[edge.target] += 1
        ready = sorted(node_id for node_id, deg in indegree.items() if deg == 0)
        order: List[str] = []
        while ready:
            current = ready.pop(0)
            order.append(current)
            for nxt in adjacency[current]:
                indegree[nxt] -= 1
                if indegree[nxt] == 0:
                    ready.append(nxt)
            ready.sort()
        if len(order) != len(self._nodes):
            raise SchemaError("schema contains a cycle not formed by loop edges")
        return order

    def control_path_exists(self, source: str, target: str) -> bool:
        """True when a pure control-edge path leads from source to target."""
        return target in self.transitive_successors(source, include_sync=False)

    def loop_body(self, loop_start_id: str) -> Set[str]:
        """All nodes strictly inside the loop block opened by ``loop_start_id``."""
        loop_start = self.node(loop_start_id)
        if loop_start.node_type is not NodeType.LOOP_START:
            raise SchemaError(f"{loop_start_id!r} is not a loop start node")
        if indexing_enabled():
            return set(self.index.loop_body(loop_start_id))
        loop_end_id = self.matching_loop_end(loop_start_id)
        inside = self.transitive_successors(loop_start_id, include_sync=False)
        after_end = self.transitive_successors(loop_end_id, include_sync=False)
        body = (inside - after_end) - {loop_end_id}
        body.add(loop_end_id)
        return body

    def matching_loop_end(self, loop_start_id: str) -> str:
        """The loop-end node whose loop edge points back to ``loop_start_id``."""
        if indexing_enabled():
            return self.index.matching_loop_end(loop_start_id)
        for edge in self.loop_edges():
            if edge.target == loop_start_id:
                return edge.source
        raise SchemaError(f"no loop edge back to {loop_start_id!r}")

    def matching_loop_start(self, loop_end_id: str) -> str:
        """The loop-start node targeted by the loop edge of ``loop_end_id``."""
        if indexing_enabled():
            return self.index.matching_loop_start(loop_end_id)
        for edge in self.loop_edges():
            if edge.source == loop_end_id:
                return edge.target
        raise SchemaError(f"no loop edge from {loop_end_id!r}")

    # ------------------------------------------------------------------ #
    # data-flow queries
    # ------------------------------------------------------------------ #

    def writers_of(self, element: str) -> List[str]:
        """Activities writing ``element``."""
        if indexing_enabled():
            return self.index.writers_of(element)
        return [d.activity for d in self._data_edges.values() if d.element == element and d.is_write]

    def readers_of(self, element: str) -> List[str]:
        """Activities reading ``element``."""
        if indexing_enabled():
            return self.index.readers_of(element)
        return [d.activity for d in self._data_edges.values() if d.element == element and d.is_read]

    def data_edges_of(self, activity: str) -> List[DataEdge]:
        """All data edges attached to ``activity``."""
        if indexing_enabled():
            return self.index.data_edges_of(activity)
        return [d for d in self._data_edges.values() if d.activity == activity]

    def reads_of(self, activity: str) -> List[DataEdge]:
        if indexing_enabled():
            return self.index.reads_of(activity)
        return [d for d in self.data_edges_of(activity) if d.is_read]

    def writes_of(self, activity: str) -> List[DataEdge]:
        if indexing_enabled():
            return self.index.writes_of(activity)
        return [d for d in self.data_edges_of(activity) if d.is_write]

    # ------------------------------------------------------------------ #
    # copy / compare / serialize
    # ------------------------------------------------------------------ #

    def copy(self, schema_id: Optional[str] = None, version: Optional[int] = None) -> "ProcessSchema":
        """Deep copy of the schema, optionally re-identified."""
        clone = ProcessSchema(
            schema_id=schema_id or self.schema_id,
            name=self.name,
            version=version if version is not None else self.version,
        )
        clone._nodes = dict(self._nodes)
        clone._edges = dict(self._edges)
        clone._data_elements = dict(self._data_elements)
        clone._data_edges = dict(self._data_edges)
        return clone

    def structurally_equals(self, other: "ProcessSchema") -> bool:
        """Graph equality ignoring schema id, name and version."""
        if set(self._nodes) != set(other._nodes):
            return False
        for node_id, node in self._nodes.items():
            theirs = other._nodes[node_id]
            if node.node_type != theirs.node_type or node.name != theirs.name:
                return False
        if set(self._edges) != set(other._edges):
            return False
        for key, edge in self._edges.items():
            theirs = other._edges[key]
            if edge.guard != theirs.guard or edge.loop_condition != theirs.loop_condition:
                return False
        if set(self._data_elements) != set(other._data_elements):
            return False
        if set(self._data_edges) != set(other._data_edges):
            return False
        return True

    def size(self) -> Tuple[int, int, int, int]:
        """(node count, edge count, data element count, data edge count)."""
        return (
            len(self._nodes),
            len(self._edges),
            len(self._data_elements),
            len(self._data_edges),
        )

    def to_dict(self) -> dict:
        """Serialize the complete schema to a JSON-compatible dictionary."""
        return {
            "schema_id": self.schema_id,
            "name": self.name,
            "version": self.version,
            "nodes": [n.to_dict() for n in self._nodes.values()],
            "edges": [e.to_dict() for e in self._edges.values()],
            "data_elements": [d.to_dict() for d in self._data_elements.values()],
            "data_edges": [d.to_dict() for d in self._data_edges.values()],
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ProcessSchema":
        """Reconstruct a schema from :meth:`to_dict` output."""
        schema = cls(
            schema_id=payload["schema_id"],
            name=payload.get("name", ""),
            version=payload.get("version", 1),
        )
        for node_payload in payload.get("nodes", []):
            schema.add_node(Node.from_dict(node_payload))
        for element_payload in payload.get("data_elements", []):
            schema.add_data_element(DataElement.from_dict(element_payload))
        for edge_payload in payload.get("edges", []):
            schema.add_edge(Edge.from_dict(edge_payload))
        for dedge_payload in payload.get("data_edges", []):
            schema.add_data_edge(DataEdge.from_dict(dedge_payload))
        return schema

    def __contains__(self, node_id: str) -> bool:
        return node_id in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def __repr__(self) -> str:
        nodes, edges, elements, dedges = self.size()
        return (
            f"ProcessSchema({self.schema_id!r}, name={self.name!r}, version={self.version}, "
            f"nodes={nodes}, edges={edges}, data={elements}/{dedges})"
        )
