"""Data-flow model of ADEPT2 WSM nets.

ADEPT2 schemas model data flow explicitly: *data elements* are typed
process variables, and *data edges* connect activities to data elements
with either read or write access.  Buildtime verification uses this model
to detect missing input data (a mandatory read not preceded by a write on
every path) and ad-hoc deletion of activities uses it to detect the
"missing data" problem the paper mentions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Mapping, Optional


class DataType(str, Enum):
    """Primitive types of process data elements."""

    STRING = "string"
    INTEGER = "integer"
    FLOAT = "float"
    BOOLEAN = "boolean"
    DOCUMENT = "document"

    def default_value(self) -> Any:
        """A neutral value of this type, used when supplying missing data."""
        defaults: dict[DataType, Any] = {
            DataType.STRING: "",
            DataType.INTEGER: 0,
            DataType.FLOAT: 0.0,
            DataType.BOOLEAN: False,
            DataType.DOCUMENT: {},
        }
        return defaults[self]


class DataAccess(str, Enum):
    """Direction of a data edge."""

    READ = "read"
    WRITE = "write"


@dataclass(frozen=True)
class DataElement:
    """A typed process variable.

    Attributes:
        name: Unique name within the schema.
        data_type: Primitive type of the element.
        default: Optional initial value supplied at instance creation.
        description: Human readable documentation.
    """

    name: str
    data_type: DataType = DataType.STRING
    default: Optional[Any] = None
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("data element name must be non-empty")

    def initial_value(self) -> Any:
        """The value an instance starts with for this element."""
        if self.default is not None:
            return self.default
        return None

    def to_dict(self) -> dict:
        payload: dict[str, Any] = {
            "name": self.name,
            "data_type": self.data_type.value,
        }
        if self.default is not None:
            payload["default"] = self.default
        if self.description:
            payload["description"] = self.description
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "DataElement":
        return cls(
            name=payload["name"],
            data_type=DataType(payload.get("data_type", "string")),
            default=payload.get("default"),
            description=payload.get("description", ""),
        )


@dataclass(frozen=True)
class DataEdge:
    """A read or write connection between an activity and a data element.

    Attributes:
        activity: Id of the accessing activity node.
        element: Name of the accessed data element.
        access: Read or write.
        mandatory: Mandatory reads require a preceding write on every
            execution path (verified at buildtime); optional reads do not.
    """

    activity: str
    element: str
    access: DataAccess
    mandatory: bool = True
    properties: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.activity:
            raise ValueError("data edge activity must be non-empty")
        if not self.element:
            raise ValueError("data edge element must be non-empty")

    @property
    def key(self) -> tuple[str, str, str]:
        """Unique identity of the data edge within a schema."""
        return (self.activity, self.element, self.access.value)

    @property
    def is_read(self) -> bool:
        return self.access is DataAccess.READ

    @property
    def is_write(self) -> bool:
        return self.access is DataAccess.WRITE

    def to_dict(self) -> dict:
        payload: dict[str, Any] = {
            "activity": self.activity,
            "element": self.element,
            "access": self.access.value,
            "mandatory": self.mandatory,
        }
        if self.properties:
            payload["properties"] = dict(self.properties)
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "DataEdge":
        return cls(
            activity=payload["activity"],
            element=payload["element"],
            access=DataAccess(payload["access"]),
            mandatory=payload.get("mandatory", True),
            properties=dict(payload.get("properties", {})),
        )


def read_edge(activity: str, element: str, mandatory: bool = True) -> DataEdge:
    """Convenience constructor for a read data edge."""
    return DataEdge(activity=activity, element=element, access=DataAccess.READ, mandatory=mandatory)


def write_edge(activity: str, element: str) -> DataEdge:
    """Convenience constructor for a write data edge."""
    return DataEdge(activity=activity, element=element, access=DataAccess.WRITE)
