"""Node model of ADEPT2 WSM nets.

A process schema consists of *activity* nodes (units of work assigned to
users or application components) and *structural* nodes that open and
close control blocks: AND splits/joins for parallel branching, XOR
splits/joins for conditional branching and loop start/end nodes for
repetition.  Every schema has exactly one start and one end node.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from enum import Enum
from typing import Any, Mapping, Optional


class NodeType(str, Enum):
    """Kinds of nodes a WSM net may contain."""

    START = "start"
    END = "end"
    ACTIVITY = "activity"
    AND_SPLIT = "and_split"
    AND_JOIN = "and_join"
    XOR_SPLIT = "xor_split"
    XOR_JOIN = "xor_join"
    LOOP_START = "loop_start"
    LOOP_END = "loop_end"

    @property
    def is_split(self) -> bool:
        """True for nodes that open a branching block."""
        return self in (NodeType.AND_SPLIT, NodeType.XOR_SPLIT)

    @property
    def is_join(self) -> bool:
        """True for nodes that close a branching block."""
        return self in (NodeType.AND_JOIN, NodeType.XOR_JOIN)

    @property
    def is_structural(self) -> bool:
        """True for nodes that only shape control flow (no work performed)."""
        return self is not NodeType.ACTIVITY

    @property
    def counterpart(self) -> Optional["NodeType"]:
        """The matching block-closing (or opening) node type, if any."""
        pairs = {
            NodeType.AND_SPLIT: NodeType.AND_JOIN,
            NodeType.AND_JOIN: NodeType.AND_SPLIT,
            NodeType.XOR_SPLIT: NodeType.XOR_JOIN,
            NodeType.XOR_JOIN: NodeType.XOR_SPLIT,
            NodeType.LOOP_START: NodeType.LOOP_END,
            NodeType.LOOP_END: NodeType.LOOP_START,
            NodeType.START: NodeType.END,
            NodeType.END: NodeType.START,
        }
        return pairs.get(self)


@dataclass(frozen=True)
class Node:
    """A single node of a process schema.

    Attributes:
        node_id: Unique identifier within the schema.
        node_type: Structural role of the node.
        name: Human readable label (defaults to the id).
        staff_assignment: Role name used by the organisational model to
            resolve worklist entries for this activity.
        duration: Estimated duration in abstract time units, used by the
            workload generators and the distributed cost model.
        application: Name of the application component invoked by the
            activity (informational).
        properties: Free-form extension attributes.
    """

    node_id: str
    node_type: NodeType = NodeType.ACTIVITY
    name: str = ""
    staff_assignment: Optional[str] = None
    duration: float = 1.0
    application: Optional[str] = None
    properties: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.node_id:
            raise ValueError("node_id must be a non-empty string")
        if not self.name:
            object.__setattr__(self, "name", self.node_id)
        if self.duration < 0:
            raise ValueError(f"duration must be >= 0, got {self.duration}")

    @property
    def is_activity(self) -> bool:
        """True when this node represents actual work."""
        return self.node_type is NodeType.ACTIVITY

    def renamed(self, name: str) -> "Node":
        """Return a copy of this node with a different display name."""
        return replace(self, name=name)

    def with_assignment(self, role: str) -> "Node":
        """Return a copy of this node assigned to ``role``."""
        return replace(self, staff_assignment=role)

    def to_dict(self) -> dict:
        """Serialize the node to a JSON-compatible dictionary."""
        payload: dict[str, Any] = {
            "node_id": self.node_id,
            "node_type": self.node_type.value,
            "name": self.name,
            "duration": self.duration,
        }
        if self.staff_assignment is not None:
            payload["staff_assignment"] = self.staff_assignment
        if self.application is not None:
            payload["application"] = self.application
        if self.properties:
            payload["properties"] = dict(self.properties)
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Node":
        """Reconstruct a node from :meth:`to_dict` output."""
        return cls(
            node_id=payload["node_id"],
            node_type=NodeType(payload.get("node_type", "activity")),
            name=payload.get("name", ""),
            staff_assignment=payload.get("staff_assignment"),
            duration=payload.get("duration", 1.0),
            application=payload.get("application"),
            properties=dict(payload.get("properties", {})),
        )


def activity(node_id: str, name: str = "", **kwargs: Any) -> Node:
    """Convenience constructor for an activity node."""
    return Node(node_id=node_id, node_type=NodeType.ACTIVITY, name=name, **kwargs)


def structural(node_id: str, node_type: NodeType, name: str = "") -> Node:
    """Convenience constructor for a structural (non-activity) node."""
    if node_type is NodeType.ACTIVITY:
        raise ValueError("structural() must not be used for activity nodes")
    return Node(node_id=node_id, node_type=node_type, name=name)
