"""Edge model of ADEPT2 WSM nets.

Three edge types connect the nodes of a process schema:

* **control edges** define the normal precedence relation;
* **sync edges** impose an additional ordering between activities of
  *different* branches of an AND block (the paper's Fig. 1 inserts one
  between ``send questions`` and ``confirm order``);
* **loop edges** connect a loop-end node back to its loop-start node and
  carry the loop condition.

XOR split outgoing control edges carry a *guard* — an expression over the
process data elements evaluated by the runtime engine to select a branch.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from enum import Enum
from typing import Any, Mapping, Optional


class EdgeType(str, Enum):
    """Kinds of edges a WSM net may contain."""

    CONTROL = "control"
    SYNC = "sync"
    LOOP = "loop"


@dataclass(frozen=True)
class Edge:
    """A directed edge between two nodes of a process schema.

    Attributes:
        source: Id of the source node.
        target: Id of the target node.
        edge_type: Control, sync or loop edge.
        guard: Branch-selection expression for control edges leaving an
            XOR split (``None`` means "default branch").
        loop_condition: Continuation condition for loop edges; the loop
            body is repeated while the condition evaluates to true.
        properties: Free-form extension attributes.
    """

    source: str
    target: str
    edge_type: EdgeType = EdgeType.CONTROL
    guard: Optional[str] = None
    loop_condition: Optional[str] = None
    properties: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.source or not self.target:
            raise ValueError("edge endpoints must be non-empty node ids")
        if self.source == self.target:
            raise ValueError(f"self-loop edges are not allowed ({self.source})")
        if self.loop_condition is not None and self.edge_type is not EdgeType.LOOP:
            raise ValueError("loop_condition is only valid on loop edges")

    @property
    def key(self) -> tuple[str, str, str]:
        """Unique identity of the edge within a schema."""
        return (self.source, self.target, self.edge_type.value)

    @property
    def is_control(self) -> bool:
        return self.edge_type is EdgeType.CONTROL

    @property
    def is_sync(self) -> bool:
        return self.edge_type is EdgeType.SYNC

    @property
    def is_loop(self) -> bool:
        return self.edge_type is EdgeType.LOOP

    def with_guard(self, guard: Optional[str]) -> "Edge":
        """Return a copy of this edge with a different guard expression."""
        return replace(self, guard=guard)

    def to_dict(self) -> dict:
        """Serialize the edge to a JSON-compatible dictionary."""
        payload: dict[str, Any] = {
            "source": self.source,
            "target": self.target,
            "edge_type": self.edge_type.value,
        }
        if self.guard is not None:
            payload["guard"] = self.guard
        if self.loop_condition is not None:
            payload["loop_condition"] = self.loop_condition
        if self.properties:
            payload["properties"] = dict(self.properties)
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Edge":
        """Reconstruct an edge from :meth:`to_dict` output."""
        return cls(
            source=payload["source"],
            target=payload["target"],
            edge_type=EdgeType(payload.get("edge_type", "control")),
            guard=payload.get("guard"),
            loop_condition=payload.get("loop_condition"),
            properties=dict(payload.get("properties", {})),
        )


def control_edge(source: str, target: str, guard: Optional[str] = None) -> Edge:
    """Convenience constructor for a control edge."""
    return Edge(source=source, target=target, edge_type=EdgeType.CONTROL, guard=guard)


def sync_edge(source: str, target: str) -> Edge:
    """Convenience constructor for a sync edge."""
    return Edge(source=source, target=target, edge_type=EdgeType.SYNC)


def loop_edge(source: str, target: str, condition: str = "False") -> Edge:
    """Convenience constructor for a loop-back edge."""
    return Edge(
        source=source,
        target=target,
        edge_type=EdgeType.LOOP,
        loop_condition=condition,
    )
