"""Process meta-model (WSM nets) of the ADEPT2 reproduction.

The schema package implements the block-structured process meta-model the
paper builds on: activities and structural nodes connected by control,
sync and loop edges, plus explicit data flow (data elements with read and
write data edges).  Process schemas are verified at buildtime by
:mod:`repro.verification` and executed by :mod:`repro.runtime`.
"""

from repro.schema.nodes import Node, NodeType
from repro.schema.edges import Edge, EdgeType
from repro.schema.data import DataElement, DataEdge, DataAccess, DataType
from repro.schema.graph import ProcessSchema, SchemaError
from repro.schema.index import SchemaIndex, indexing_enabled, set_indexing, without_index
from repro.schema.blocks import Block, BlockTree, BlockStructureError
from repro.schema.builder import SchemaBuilder, BuilderError
from repro.schema import templates

__all__ = [
    "Node",
    "NodeType",
    "Edge",
    "EdgeType",
    "DataElement",
    "DataEdge",
    "DataAccess",
    "DataType",
    "ProcessSchema",
    "SchemaError",
    "SchemaIndex",
    "indexing_enabled",
    "set_indexing",
    "without_index",
    "Block",
    "BlockTree",
    "BlockStructureError",
    "SchemaBuilder",
    "BuilderError",
    "templates",
]
