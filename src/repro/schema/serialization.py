"""JSON (de)serialization helpers for process schemas.

The schema objects already know how to convert themselves to plain
dictionaries; this module adds stable JSON text rendering and file I/O so
that the schema repository and the examples can persist templates.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.schema.graph import ProcessSchema


def schema_to_json(schema: ProcessSchema, indent: int = 2) -> str:
    """Render ``schema`` as deterministic, human-readable JSON text."""
    return json.dumps(schema.to_dict(), indent=indent, sort_keys=True)


def schema_from_json(text: str) -> ProcessSchema:
    """Parse a schema from JSON text produced by :func:`schema_to_json`."""
    return ProcessSchema.from_dict(json.loads(text))


def save_schema(schema: ProcessSchema, path: Union[str, Path]) -> Path:
    """Write ``schema`` to ``path`` as JSON and return the path."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(schema_to_json(schema), encoding="utf-8")
    return target


def load_schema(path: Union[str, Path]) -> ProcessSchema:
    """Load a schema previously written by :func:`save_schema`."""
    return schema_from_json(Path(path).read_text(encoding="utf-8"))
