"""The compiled :class:`SchemaIndex` — indexed structural view of a schema.

Every structural question the engine, the verifiers, the change
operations or the migration manager ask (successors, predecessors,
topological order, reachability, block structure, data-flow maps) can be
answered either by scanning the schema's full edge list — O(E) per query
— or from structures compiled once per schema.  This module implements
the compiled form: given a :class:`~repro.schema.graph.ProcessSchema`,
a :class:`SchemaIndex` builds per-node adjacency maps for all three edge
types (forward and backward), caches start/end nodes, topological orders
and ranks, reachability sets, dominator/post-dominator sets, the block
nesting tree, loop-body sets and per-activity read/write data-flow maps.

Invalidation is by **generation counter**: every structural mutation of a
:class:`ProcessSchema` bumps ``schema.generation``; ``schema.index``
lazily rebuilds its index when the cached one is stale.  All instances of
a process type share the type schema object and therefore one compiled
index — exactly the redundancy-free sharing of the paper's storage model.

Contract for callers holding an index across operations: an index is a
snapshot of one generation.  Holding it across *reads* (stepping many
instances, verifying, migrating a population) is the intended use; after
any structural mutation of the schema, re-fetch ``schema.index``.

The module-level switch :func:`set_indexing` /: func:`without_index`
exists for benchmarks and parity tests only — it routes the schema's
query methods back to their original linear-scan implementations.
"""

from __future__ import annotations

import contextlib
from typing import TYPE_CHECKING, Dict, FrozenSet, List, Optional, Set, Tuple

from repro.schema.data import DataEdge
from repro.schema.edges import Edge, EdgeType
from repro.schema.nodes import Node, NodeType

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (graph imports index)
    from repro.schema.blocks import BlockTree
    from repro.schema.graph import ProcessSchema

EdgeKey = Tuple[str, str, str]

# ---------------------------------------------------------------------- #
# global switch (benchmarks / parity tests)
# ---------------------------------------------------------------------- #

_INDEXING_ENABLED = True


def indexing_enabled() -> bool:
    """True when schema queries are answered from the compiled index."""
    return _INDEXING_ENABLED


def set_indexing(enabled: bool) -> None:
    """Globally enable or disable index-backed schema queries."""
    global _INDEXING_ENABLED
    _INDEXING_ENABLED = bool(enabled)


@contextlib.contextmanager
def without_index():
    """Context manager: temporarily answer schema queries by edge scans.

    Used by the throughput benchmark to measure the pre-index baseline and
    by the parity tests to compare indexed against scanned answers.
    """
    global _INDEXING_ENABLED
    previous = _INDEXING_ENABLED
    _INDEXING_ENABLED = False
    try:
        yield
    finally:
        _INDEXING_ENABLED = previous


class SchemaIndex:
    """Compiled structural index of one schema at one generation.

    The constructor eagerly builds the cheap O(N + E) structures
    (adjacency, edge-type partitions, data-flow maps); everything
    quadratic or failure-prone (topological orders, reachability,
    dominators, blocks) is computed lazily on first use and cached.
    Obtain instances through ``schema.index`` (or :meth:`SchemaIndex.of`),
    which reuses the cached index while ``schema.generation`` is
    unchanged.
    """

    __slots__ = (
        "_schema",
        "generation",
        "node_ids",
        "_nodes",
        "_out_all",
        "_in_all",
        "_out_control",
        "_in_control",
        "_out_sync",
        "_in_sync",
        "_out_loop",
        "_in_loop",
        "_control_edge_list",
        "_sync_edge_list",
        "_loop_edge_list",
        "_non_loop_edge_keys",
        "_loop_start_of",
        "_loop_end_of",
        "_data_edges_of",
        "_reads_of",
        "_writes_of",
        "_writers_of",
        "_readers_of",
        "_activity_ids",
        "_start_id",
        "_end_id",
        "_topo_cache",
        "_rank_cache",
        "_reach_cache",
        "_loop_body_cache",
        "_loop_internal_edges",
        "_innermost_loop",
        "_dominators",
        "_post_dominators",
        "_matching_join",
        "_matching_split",
        "_block_tree",
        "_written_before",
        "_entry_specs",
        "_step_kernel",
        "_round_bound",
    )

    def __init__(self, schema: "ProcessSchema") -> None:
        self._schema = schema
        self.generation = schema.generation

        nodes = schema.nodes
        self._nodes: Dict[str, Node] = dict(nodes)
        self.node_ids: Tuple[str, ...] = tuple(nodes)
        self._activity_ids: Tuple[str, ...] = tuple(
            node_id for node_id, node in nodes.items() if node.is_activity
        )

        out_all: Dict[str, List[Edge]] = {node_id: [] for node_id in nodes}
        in_all: Dict[str, List[Edge]] = {node_id: [] for node_id in nodes}
        out_control: Dict[str, List[Edge]] = {node_id: [] for node_id in nodes}
        in_control: Dict[str, List[Edge]] = {node_id: [] for node_id in nodes}
        out_sync: Dict[str, List[Edge]] = {node_id: [] for node_id in nodes}
        in_sync: Dict[str, List[Edge]] = {node_id: [] for node_id in nodes}
        out_loop: Dict[str, List[Edge]] = {node_id: [] for node_id in nodes}
        in_loop: Dict[str, List[Edge]] = {node_id: [] for node_id in nodes}
        control_edges: List[Edge] = []
        sync_edges: List[Edge] = []
        loop_edges: List[Edge] = []
        non_loop_keys: List[EdgeKey] = []
        loop_start_of: Dict[str, str] = {}
        loop_end_of: Dict[str, str] = {}

        for edge in schema.raw_edges():
            # edges whose endpoints were removed cannot occur (remove_node
            # prunes them), so every endpoint has an adjacency slot
            out_all[edge.source].append(edge)
            in_all[edge.target].append(edge)
            if edge.edge_type is EdgeType.CONTROL:
                out_control[edge.source].append(edge)
                in_control[edge.target].append(edge)
                control_edges.append(edge)
                non_loop_keys.append(edge.key)
            elif edge.edge_type is EdgeType.SYNC:
                out_sync[edge.source].append(edge)
                in_sync[edge.target].append(edge)
                sync_edges.append(edge)
                non_loop_keys.append(edge.key)
            else:
                out_loop[edge.source].append(edge)
                in_loop[edge.target].append(edge)
                loop_edges.append(edge)
                # first loop edge wins, matching the scan order of
                # matching_loop_start / matching_loop_end
                loop_start_of.setdefault(edge.source, edge.target)
                loop_end_of.setdefault(edge.target, edge.source)

        self._out_all = out_all
        self._in_all = in_all
        self._out_control = out_control
        self._in_control = in_control
        self._out_sync = out_sync
        self._in_sync = in_sync
        self._out_loop = out_loop
        self._in_loop = in_loop
        self._control_edge_list = control_edges
        self._sync_edge_list = sync_edges
        self._loop_edge_list = loop_edges
        self._non_loop_edge_keys: Tuple[EdgeKey, ...] = tuple(non_loop_keys)
        self._loop_start_of = loop_start_of
        self._loop_end_of = loop_end_of

        data_edges_of: Dict[str, List[DataEdge]] = {}
        reads_of: Dict[str, List[DataEdge]] = {}
        writes_of: Dict[str, List[DataEdge]] = {}
        writers_of: Dict[str, List[str]] = {}
        readers_of: Dict[str, List[str]] = {}
        for dedge in schema.raw_data_edges():
            data_edges_of.setdefault(dedge.activity, []).append(dedge)
            if dedge.is_read:
                reads_of.setdefault(dedge.activity, []).append(dedge)
                readers_of.setdefault(dedge.element, []).append(dedge.activity)
            if dedge.is_write:
                writes_of.setdefault(dedge.activity, []).append(dedge)
                writers_of.setdefault(dedge.element, []).append(dedge.activity)
        self._data_edges_of = data_edges_of
        self._reads_of = reads_of
        self._writes_of = writes_of
        self._writers_of = writers_of
        self._readers_of = readers_of

        # lazily populated caches
        self._start_id: Optional[str] = None
        self._end_id: Optional[str] = None
        self._topo_cache: Dict[bool, List[str]] = {}
        self._rank_cache: Dict[bool, Dict[str, int]] = {}
        self._reach_cache: Dict[Tuple[str, bool, bool], FrozenSet[str]] = {}
        self._loop_body_cache: Dict[str, Set[str]] = {}
        self._loop_internal_edges: Dict[str, Tuple[Edge, ...]] = {}
        self._innermost_loop: Dict[str, Optional[str]] = {}
        self._dominators: Optional[Dict[str, Set[str]]] = None
        self._post_dominators: Optional[Dict[str, Set[str]]] = None
        self._matching_join: Dict[str, str] = {}
        self._matching_split: Dict[str, str] = {}
        self._block_tree: Optional["BlockTree"] = None
        self._written_before: Optional[Dict[str, Set[str]]] = None
        self._entry_specs: Optional[Dict[str, Tuple[int, Tuple[EdgeKey, ...], Tuple[EdgeKey, ...]]]] = None
        self._step_kernel = None  # lazily compiled StepKernel (runtime.kernel)
        self._round_bound: Optional[int] = None

    # ------------------------------------------------------------------ #
    # acquisition
    # ------------------------------------------------------------------ #

    @classmethod
    def of(cls, schema: "ProcessSchema") -> "SchemaIndex":
        """The (cached) index of ``schema`` at its current generation."""
        return schema.index

    @property
    def schema(self) -> "ProcessSchema":
        return self._schema

    @property
    def stale(self) -> bool:
        """True once the schema mutated past this index's generation."""
        return self.generation != self._schema.generation

    # ------------------------------------------------------------------ #
    # nodes
    # ------------------------------------------------------------------ #

    def node(self, node_id: str) -> Node:
        """The node object behind ``node_id`` (raises ``SchemaError``)."""
        try:
            return self._nodes[node_id]
        except KeyError:
            from repro.schema.graph import SchemaError

            raise SchemaError(f"unknown node: {node_id!r}") from None

    def has_node(self, node_id: str) -> bool:
        return node_id in self._nodes

    def activity_ids(self) -> List[str]:
        return list(self._activity_ids)

    def start_node_id(self) -> str:
        """Id of the unique start node (cached; raises ``SchemaError``)."""
        if self._start_id is None:
            starts = [n for n in self._nodes.values() if n.node_type is NodeType.START]
            if len(starts) != 1:
                from repro.schema.graph import SchemaError

                raise SchemaError(
                    f"schema must have exactly one start node, found {len(starts)}"
                )
            self._start_id = starts[0].node_id
        return self._start_id

    def end_node_id(self) -> str:
        """Id of the unique end node (cached; raises ``SchemaError``)."""
        if self._end_id is None:
            ends = [n for n in self._nodes.values() if n.node_type is NodeType.END]
            if len(ends) != 1:
                from repro.schema.graph import SchemaError

                raise SchemaError(
                    f"schema must have exactly one end node, found {len(ends)}"
                )
            self._end_id = ends[0].node_id
        return self._end_id

    # ------------------------------------------------------------------ #
    # adjacency (hot path: the returned lists are the internal ones —
    # treat them as immutable)
    # ------------------------------------------------------------------ #

    def out_edges(self, node_id: str, edge_type: Optional[EdgeType] = None) -> List[Edge]:
        """Outgoing edges of ``node_id`` (internal list, do not mutate)."""
        table = self._out_table(edge_type)
        return table.get(node_id, _EMPTY_EDGES)

    def in_edges(self, node_id: str, edge_type: Optional[EdgeType] = None) -> List[Edge]:
        """Incoming edges of ``node_id`` (internal list, do not mutate)."""
        table = self._in_table(edge_type)
        return table.get(node_id, _EMPTY_EDGES)

    def _out_table(self, edge_type: Optional[EdgeType]) -> Dict[str, List[Edge]]:
        if edge_type is None:
            return self._out_all
        if edge_type is EdgeType.CONTROL:
            return self._out_control
        if edge_type is EdgeType.SYNC:
            return self._out_sync
        return self._out_loop

    def _in_table(self, edge_type: Optional[EdgeType]) -> Dict[str, List[Edge]]:
        if edge_type is None:
            return self._in_all
        if edge_type is EdgeType.CONTROL:
            return self._in_control
        if edge_type is EdgeType.SYNC:
            return self._in_sync
        return self._in_loop

    def edges_from(self, node_id: str, edge_type: Optional[EdgeType] = None) -> List[Edge]:
        """Copy-returning variant of :meth:`out_edges` (schema API parity)."""
        return list(self.out_edges(node_id, edge_type))

    def edges_to(self, node_id: str, edge_type: Optional[EdgeType] = None) -> List[Edge]:
        """Copy-returning variant of :meth:`in_edges` (schema API parity)."""
        return list(self.in_edges(node_id, edge_type))

    def successors(self, node_id: str, edge_type: EdgeType = EdgeType.CONTROL) -> List[str]:
        return [edge.target for edge in self.out_edges(node_id, edge_type)]

    def predecessors(self, node_id: str, edge_type: EdgeType = EdgeType.CONTROL) -> List[str]:
        return [edge.source for edge in self.in_edges(node_id, edge_type)]

    def control_edges(self) -> List[Edge]:
        return list(self._control_edge_list)

    def sync_edges(self) -> List[Edge]:
        return list(self._sync_edge_list)

    def loop_edges(self) -> List[Edge]:
        return list(self._loop_edge_list)

    def non_loop_edge_keys(self) -> Tuple[EdgeKey, ...]:
        """Keys of all control and sync edges (marking initialisation)."""
        return self._non_loop_edge_keys

    # entry-spec kinds consumed by the engine's marking propagation
    ENTRY_START = 0
    ENTRY_AND_JOIN = 1
    ENTRY_XOR_JOIN = 2
    ENTRY_SINGLE = 3

    def entry_specs(self) -> Dict[str, Tuple[int, Tuple[EdgeKey, ...], Tuple[EdgeKey, ...]]]:
        """Per-node ``(kind, control edge keys, sync edge keys)`` triples.

        This is the engine's hottest structure: the marking propagation
        decides for every still-untouched node whether it activates,
        skips or waits, purely from its incoming control/sync edge states.
        Precompiling the node kind and the marking lookup keys turns that
        decision into a handful of dict reads with no per-edge object
        traffic.
        """
        specs = self._entry_specs
        if specs is None:
            specs = {}
            for node_id, node in self._nodes.items():
                node_type = node.node_type
                if node_type is NodeType.START:
                    kind = self.ENTRY_START
                elif node_type is NodeType.AND_JOIN:
                    kind = self.ENTRY_AND_JOIN
                elif node_type is NodeType.XOR_JOIN:
                    kind = self.ENTRY_XOR_JOIN
                else:
                    kind = self.ENTRY_SINGLE
                specs[node_id] = (
                    kind,
                    tuple(edge.key for edge in self._in_control.get(node_id, _EMPTY_EDGES)),
                    tuple(edge.key for edge in self._in_sync.get(node_id, _EMPTY_EDGES)),
                )
            self._entry_specs = specs
        return specs

    def step_kernel(self):
        """The compiled per-schema stepping kernel (cached per generation).

        Compilation specialises every node's entry decision into a closure
        over dense marking positions; see :mod:`repro.runtime.kernel`.
        The kernel shares this index's lifetime: it is rebuilt together
        with the index when the schema generation moves on, and the engine
        refuses to run a stale kernel against a newer schema.
        """
        kernel = self._step_kernel
        if kernel is None:
            from repro.runtime.kernel import StepKernel

            kernel = StepKernel(self._schema, self)
            self._step_kernel = kernel
        return kernel

    def propagation_round_bound(self) -> int:
        """Schema-derived bound on marking-propagation rounds (cached).

        Topological depth times the schema's total loop-iteration budget,
        floored at the legacy engine constant — see
        :func:`repro.runtime.kernel.derive_round_bound`.
        """
        bound = self._round_bound
        if bound is None:
            from repro.runtime.kernel import derive_round_bound, _control_depth, _loop_budget

            bound = derive_round_bound(
                node_count=len(self._nodes),
                depth=_control_depth(self),
                loop_budget=_loop_budget(self._loop_edge_list, self),
            )
            self._round_bound = bound
        return bound

    # ------------------------------------------------------------------ #
    # loop structure
    # ------------------------------------------------------------------ #

    def matching_loop_end(self, loop_start_id: str) -> str:
        """The loop-end node whose loop edge points back to ``loop_start_id``."""
        try:
            return self._loop_end_of[loop_start_id]
        except KeyError:
            from repro.schema.graph import SchemaError

            raise SchemaError(f"no loop edge back to {loop_start_id!r}") from None

    def matching_loop_start(self, loop_end_id: str) -> str:
        """The loop-start node targeted by the loop edge of ``loop_end_id``."""
        try:
            return self._loop_start_of[loop_end_id]
        except KeyError:
            from repro.schema.graph import SchemaError

            raise SchemaError(f"no loop edge from {loop_end_id!r}") from None

    def loop_body(self, loop_start_id: str) -> Set[str]:
        """Nodes strictly inside the loop opened by ``loop_start_id`` (cached)."""
        body = self._loop_body_cache.get(loop_start_id)
        if body is None:
            loop_start = self.node(loop_start_id)
            if loop_start.node_type is not NodeType.LOOP_START:
                from repro.schema.graph import SchemaError

                raise SchemaError(f"{loop_start_id!r} is not a loop start node")
            loop_end_id = self.matching_loop_end(loop_start_id)
            inside = self.transitive_successors(loop_start_id, include_sync=False)
            after_end = self.transitive_successors(loop_end_id, include_sync=False)
            body = set(inside - after_end) - {loop_end_id}
            body.add(loop_end_id)
            self._loop_body_cache[loop_start_id] = body
        return body

    def loop_internal_edges(self, loop_start_id: str) -> Tuple[Edge, ...]:
        """Non-loop edges with both endpoints inside the loop block.

        These are exactly the edge states the engine resets on loop-back.
        """
        cached = self._loop_internal_edges.get(loop_start_id)
        if cached is None:
            reset_nodes = set(self.loop_body(loop_start_id)) | {loop_start_id}
            cached = tuple(
                edge
                for node_id in reset_nodes
                for edge in self._out_all.get(node_id, _EMPTY_EDGES)
                if not edge.is_loop and edge.target in reset_nodes
            )
            self._loop_internal_edges[loop_start_id] = cached
        return cached

    def innermost_loop_start(self, node_id: str) -> Optional[str]:
        """Loop-start id of the smallest loop containing ``node_id``, if any."""
        if node_id not in self._innermost_loop:
            best: Optional[Tuple[int, str]] = None
            for edge in self._loop_edge_list:
                loop_start_id = edge.target
                body = self.loop_body(loop_start_id)
                if node_id in body or node_id == loop_start_id:
                    size = len(body)
                    if best is None or size < best[0]:
                        best = (size, loop_start_id)
            self._innermost_loop[node_id] = best[1] if best is not None else None
        return self._innermost_loop[node_id]

    # ------------------------------------------------------------------ #
    # reachability and order
    # ------------------------------------------------------------------ #

    def transitive_successors(self, node_id: str, include_sync: bool = False) -> FrozenSet[str]:
        """All nodes reachable from ``node_id`` (loop edges excluded, cached)."""
        return self._reach(node_id, forward=True, include_sync=include_sync)

    def transitive_predecessors(self, node_id: str, include_sync: bool = False) -> FrozenSet[str]:
        """All nodes reaching ``node_id`` (loop edges excluded, cached)."""
        return self._reach(node_id, forward=False, include_sync=include_sync)

    def _reach(self, node_id: str, forward: bool, include_sync: bool) -> FrozenSet[str]:
        key = (node_id, forward, include_sync)
        cached = self._reach_cache.get(key)
        if cached is None:
            self.node(node_id)  # raise SchemaError for unknown nodes
            control = self._out_control if forward else self._in_control
            sync = self._out_sync if forward else self._in_sync
            seen: Set[str] = set()
            frontier = [node_id]
            while frontier:
                current = frontier.pop()
                edges = control.get(current, _EMPTY_EDGES)
                if include_sync:
                    edges = edges + sync.get(current, _EMPTY_EDGES)
                for edge in edges:
                    nxt = edge.target if forward else edge.source
                    if nxt not in seen:
                        seen.add(nxt)
                        frontier.append(nxt)
            seen.discard(node_id)
            cached = frozenset(seen)
            self._reach_cache[key] = cached
        return cached

    def topological_order(self, include_sync: bool = True) -> List[str]:
        """Cached topological order (same tie-breaking as the schema scan)."""
        cached = self._topo_cache.get(include_sync)
        if cached is None:
            cached = self._compute_topological_order(include_sync)
            self._topo_cache[include_sync] = cached
        return list(cached)

    def topo_rank(self, include_sync: bool = True) -> Dict[str, int]:
        """Mapping of node id to its position in the topological order."""
        cached = self._rank_cache.get(include_sync)
        if cached is None:
            cached = {
                node_id: rank
                for rank, node_id in enumerate(self.topological_order(include_sync))
            }
            self._rank_cache[include_sync] = cached
        return cached

    def _compute_topological_order(self, include_sync: bool) -> List[str]:
        indegree: Dict[str, int] = {node_id: 0 for node_id in self._nodes}
        adjacency: Dict[str, List[str]] = {node_id: [] for node_id in self._nodes}
        for edge in self._control_edge_list:
            adjacency[edge.source].append(edge.target)
            indegree[edge.target] += 1
        if include_sync:
            for edge in self._sync_edge_list:
                adjacency[edge.source].append(edge.target)
                indegree[edge.target] += 1
        ready = sorted(node_id for node_id, deg in indegree.items() if deg == 0)
        order: List[str] = []
        while ready:
            current = ready.pop(0)
            order.append(current)
            for nxt in adjacency[current]:
                indegree[nxt] -= 1
                if indegree[nxt] == 0:
                    ready.append(nxt)
            ready.sort()
        if len(order) != len(self._nodes):
            from repro.schema.graph import SchemaError

            raise SchemaError("schema contains a cycle not formed by loop edges")
        return order

    # ------------------------------------------------------------------ #
    # dominators and blocks
    # ------------------------------------------------------------------ #

    def dominators(self) -> Dict[str, Set[str]]:
        """Cached dominator sets on the control DAG."""
        if self._dominators is None:
            from repro.schema.blocks import dominators

            self._dominators = dominators(
                self._schema, order=self.topological_order(include_sync=False)
            )
        return self._dominators

    def post_dominators(self) -> Dict[str, Set[str]]:
        """Cached post-dominator sets on the control DAG."""
        if self._post_dominators is None:
            from repro.schema.blocks import post_dominators

            self._post_dominators = post_dominators(
                self._schema, order=self.topological_order(include_sync=False)
            )
        return self._post_dominators

    def matching_join(self, split_id: str) -> str:
        """Cached matching join of ``split_id`` (see ``blocks.matching_join``)."""
        join_id = self._matching_join.get(split_id)
        if join_id is None:
            from repro.schema.blocks import matching_join

            join_id = matching_join(
                self._schema,
                split_id,
                postdom=self.post_dominators(),
                order=self.topological_order(include_sync=False),
            )
            self._matching_join[split_id] = join_id
        return join_id

    def matching_split(self, join_id: str) -> str:
        """Cached matching split of ``join_id`` (see ``blocks.matching_split``)."""
        split_id = self._matching_split.get(join_id)
        if split_id is None:
            from repro.schema.blocks import matching_split

            split_id = matching_split(
                self._schema,
                join_id,
                dom=self.dominators(),
                order=self.topological_order(include_sync=False),
            )
            self._matching_split[join_id] = split_id
        return split_id

    def block_tree(self) -> "BlockTree":
        """The cached block nesting tree of the schema."""
        if self._block_tree is None:
            from repro.schema.blocks import BlockTree

            self._block_tree = BlockTree.build(self._schema)
        return self._block_tree

    # ------------------------------------------------------------------ #
    # data flow
    # ------------------------------------------------------------------ #

    def data_edges_of(self, activity: str) -> List[DataEdge]:
        return list(self._data_edges_of.get(activity, _EMPTY_DATA_EDGES))

    def reads_of(self, activity: str) -> List[DataEdge]:
        return list(self._reads_of.get(activity, _EMPTY_DATA_EDGES))

    def writes_of(self, activity: str) -> List[DataEdge]:
        return list(self._writes_of.get(activity, _EMPTY_DATA_EDGES))

    def read_edges(self, activity: str) -> List[DataEdge]:
        """No-copy variant of :meth:`reads_of` (do not mutate)."""
        return self._reads_of.get(activity, _EMPTY_DATA_EDGES)

    def write_edges(self, activity: str) -> List[DataEdge]:
        """No-copy variant of :meth:`writes_of` (do not mutate)."""
        return self._writes_of.get(activity, _EMPTY_DATA_EDGES)

    def writers_of(self, element: str) -> List[str]:
        return list(self._writers_of.get(element, _EMPTY_IDS))

    def readers_of(self, element: str) -> List[str]:
        return list(self._readers_of.get(element, _EMPTY_IDS))

    def written_elements(self, activity: str) -> Set[str]:
        """Elements written by ``activity`` (fresh set)."""
        return {dedge.element for dedge in self.write_edges(activity)}

    def written_before(self) -> Dict[str, Set[str]]:
        """Cached "definitely written before node n" data-flow solution."""
        if self._written_before is None:
            from repro.verification.dataflow import written_before

            self._written_before = written_before(self._schema)
        return self._written_before

    # ------------------------------------------------------------------ #

    def __repr__(self) -> str:
        return (
            f"SchemaIndex({self._schema.schema_id!r}, generation={self.generation}, "
            f"nodes={len(self._nodes)}, edges="
            f"{len(self._control_edge_list) + len(self._sync_edge_list) + len(self._loop_edge_list)})"
        )


_EMPTY_EDGES: List[Edge] = []
_EMPTY_DATA_EDGES: List[DataEdge] = []
_EMPTY_IDS: List[str] = []
