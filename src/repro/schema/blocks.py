"""Block-structure analysis of WSM nets.

ADEPT2 schemas are *block structured*: every AND/XOR split has exactly one
matching join, loops have a dedicated start and end node, and blocks are
properly nested (they may be arbitrarily nested but never overlap).  Sync
edges are the only construct allowed to cross branches of an AND block.

This module computes matching split/join pairs via dominator and
post-dominator analysis on the control-flow DAG (loop edges excluded),
builds the block nesting tree and answers containment queries that the
change operations and the substitution-block computation rely on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Sequence, Set

from repro.schema.edges import EdgeType
from repro.schema.graph import ProcessSchema, SchemaError
from repro.schema.nodes import NodeType


class BlockStructureError(SchemaError):
    """Raised when block-structure analysis fails (malformed schema)."""


class BlockKind(str, Enum):
    """The kind of a control block."""

    PROCESS = "process"
    PARALLEL = "parallel"
    CONDITIONAL = "conditional"
    LOOP = "loop"


@dataclass
class Block:
    """A control block delimited by an entry and an exit node.

    Attributes:
        kind: Parallel (AND), conditional (XOR), loop, or the whole process.
        entry: Id of the opening node (split / loop start / start node).
        exit: Id of the closing node (join / loop end / end node).
        nodes: All node ids strictly between entry and exit (exclusive).
        children: Directly nested blocks.
    """

    kind: BlockKind
    entry: str
    exit: str
    nodes: Set[str] = field(default_factory=set)
    children: List["Block"] = field(default_factory=list)

    def contains(self, node_id: str, include_boundary: bool = True) -> bool:
        """True when ``node_id`` lies inside this block."""
        if include_boundary and node_id in (self.entry, self.exit):
            return True
        return node_id in self.nodes

    def all_nodes(self) -> Set[str]:
        """Every node of the block including entry and exit."""
        return self.nodes | {self.entry, self.exit}

    def __repr__(self) -> str:
        return f"Block({self.kind.value}, {self.entry!r} .. {self.exit!r}, inner={len(self.nodes)})"


def _control_successors(schema: ProcessSchema, node_id: str) -> List[str]:
    return schema.successors(node_id, EdgeType.CONTROL)


def _control_predecessors(schema: ProcessSchema, node_id: str) -> List[str]:
    return schema.predecessors(node_id, EdgeType.CONTROL)


def post_dominators(
    schema: ProcessSchema, order: Optional[Sequence[str]] = None
) -> Dict[str, Set[str]]:
    """Post-dominator sets on the control DAG (loop edges ignored).

    ``post_dominators(s)[n]`` is the set of nodes that appear on *every*
    control path from ``n`` to the end node (including ``n`` itself).
    ``order`` accepts a precomputed ``topological_order(include_sync=False)``
    so callers analysing several properties of one schema compute it once.
    """
    if order is None:
        order = schema.topological_order(include_sync=False)
    end_id = schema.end_node().node_id
    postdom: Dict[str, Set[str]] = {}
    for node_id in reversed(order):
        if node_id == end_id:
            postdom[node_id] = {node_id}
            continue
        succs = _control_successors(schema, node_id)
        if not succs:
            postdom[node_id] = {node_id}
            continue
        common: Optional[Set[str]] = None
        for succ in succs:
            succ_set = postdom.get(succ, {succ})
            common = set(succ_set) if common is None else common & succ_set
        postdom[node_id] = (common or set()) | {node_id}
    return postdom


def dominators(
    schema: ProcessSchema, order: Optional[Sequence[str]] = None
) -> Dict[str, Set[str]]:
    """Dominator sets on the control DAG (loop edges ignored).

    ``dominators(s)[n]`` is the set of nodes that appear on *every*
    control path from the start node to ``n`` (including ``n`` itself).
    ``order`` accepts a precomputed topological order (see
    :func:`post_dominators`).
    """
    if order is None:
        order = schema.topological_order(include_sync=False)
    start_id = schema.start_node().node_id
    dom: Dict[str, Set[str]] = {}
    for node_id in order:
        if node_id == start_id:
            dom[node_id] = {node_id}
            continue
        preds = _control_predecessors(schema, node_id)
        if not preds:
            dom[node_id] = {node_id}
            continue
        common: Optional[Set[str]] = None
        for pred in preds:
            pred_set = dom.get(pred, {pred})
            common = set(pred_set) if common is None else common & pred_set
        dom[node_id] = (common or set()) | {node_id}
    return dom


def matching_join(
    schema: ProcessSchema,
    split_id: str,
    postdom: Optional[Dict[str, Set[str]]] = None,
    order: Optional[Sequence[str]] = None,
) -> str:
    """The join node closing the block opened by ``split_id``.

    The matching join of a split is its immediate post-dominator of the
    expected join type.  Raises :class:`BlockStructureError` when the
    schema is not block structured.  ``postdom`` and ``order`` accept
    precomputed analysis results (``SchemaIndex`` passes its cached ones);
    when omitted they are computed on demand.
    """
    split = schema.node(split_id)
    if not split.node_type.is_split:
        raise BlockStructureError(f"{split_id!r} is not a split node")
    expected = split.node_type.counterpart
    if order is None:
        order = schema.topological_order(include_sync=False)
    if postdom is None:
        postdom = post_dominators(schema, order=order)
    candidates = postdom[split_id] - {split_id}
    if not candidates:
        raise BlockStructureError(f"split {split_id!r} has no matching join")
    position = {node_id: index for index, node_id in enumerate(order)}
    for candidate in sorted(candidates, key=lambda n: position[n]):
        if schema.node(candidate).node_type is expected:
            return candidate
    raise BlockStructureError(
        f"split {split_id!r} has no post-dominating {expected.value} node"
    )


def matching_split(
    schema: ProcessSchema,
    join_id: str,
    dom: Optional[Dict[str, Set[str]]] = None,
    order: Optional[Sequence[str]] = None,
) -> str:
    """The split node opening the block closed by ``join_id``.

    ``dom`` and ``order`` accept precomputed analysis results (see
    :func:`matching_join`).
    """
    join = schema.node(join_id)
    if not join.node_type.is_join:
        raise BlockStructureError(f"{join_id!r} is not a join node")
    expected = join.node_type.counterpart
    if order is None:
        order = schema.topological_order(include_sync=False)
    if dom is None:
        dom = dominators(schema, order=order)
    candidates = dom[join_id] - {join_id}
    if not candidates:
        raise BlockStructureError(f"join {join_id!r} has no matching split")
    position = {node_id: index for index, node_id in enumerate(order)}
    for candidate in sorted(candidates, key=lambda n: position[n], reverse=True):
        if schema.node(candidate).node_type is expected:
            return candidate
    raise BlockStructureError(
        f"join {join_id!r} has no dominating {expected.value} node"
    )


def block_inner_nodes(schema: ProcessSchema, entry: str, exit: str) -> Set[str]:
    """Nodes strictly between ``entry`` and ``exit`` on control paths."""
    after_entry = schema.transitive_successors(entry, include_sync=False)
    before_exit = schema.transitive_predecessors(exit, include_sync=False)
    return (after_entry & before_exit) - {entry, exit}


def branch_roots(schema: ProcessSchema, split_id: str) -> List[str]:
    """The first node of each branch of ``split_id`` (its direct successors)."""
    return _control_successors(schema, split_id)


def branch_containing(schema: ProcessSchema, split_id: str, node_id: str) -> Optional[str]:
    """The branch root of ``split_id`` whose branch contains ``node_id``.

    Returns ``None`` when the node lies outside the split's block.
    """
    join_id = matching_join(schema, split_id)
    inner = block_inner_nodes(schema, split_id, join_id)
    if node_id not in inner:
        return None
    for root in branch_roots(schema, split_id):
        if node_id == root or node_id in schema.transitive_successors(root, include_sync=False):
            before_join = schema.transitive_predecessors(join_id, include_sync=False)
            if node_id == root or node_id in before_join:
                return root
    return None


class BlockTree:
    """The nesting tree of all blocks of a schema."""

    def __init__(self, root: Block, blocks: Sequence[Block]) -> None:
        self.root = root
        self.blocks = list(blocks)

    @classmethod
    def build(cls, schema: ProcessSchema) -> "BlockTree":
        """Analyse ``schema`` and build its block nesting tree.

        The topological order and the post-dominator sets are computed
        once and shared by all ``matching_join`` lookups (callers that
        analyse one schema repeatedly should prefer the cached tree on
        ``schema.index.block_tree()``).
        """
        start_id = schema.start_node().node_id
        end_id = schema.end_node().node_id
        order = schema.topological_order(include_sync=False)
        postdom = post_dominators(schema, order=order)
        root = Block(
            kind=BlockKind.PROCESS,
            entry=start_id,
            exit=end_id,
            nodes=block_inner_nodes(schema, start_id, end_id),
        )
        blocks: List[Block] = [root]
        for node in schema.nodes.values():
            if node.node_type.is_split:
                join_id = matching_join(schema, node.node_id, postdom=postdom, order=order)
                kind = (
                    BlockKind.PARALLEL
                    if node.node_type is NodeType.AND_SPLIT
                    else BlockKind.CONDITIONAL
                )
                blocks.append(
                    Block(
                        kind=kind,
                        entry=node.node_id,
                        exit=join_id,
                        nodes=block_inner_nodes(schema, node.node_id, join_id),
                    )
                )
            elif node.node_type is NodeType.LOOP_START:
                loop_end = schema.matching_loop_end(node.node_id)
                blocks.append(
                    Block(
                        kind=BlockKind.LOOP,
                        entry=node.node_id,
                        exit=loop_end,
                        nodes=block_inner_nodes(schema, node.node_id, loop_end),
                    )
                )
        cls._link_children(blocks)
        return cls(root, blocks)

    @staticmethod
    def _link_children(blocks: List[Block]) -> None:
        """Attach each block to its smallest strictly-enclosing block."""
        for block in blocks:
            parent: Optional[Block] = None
            for candidate in blocks:
                if candidate is block:
                    continue
                if block.entry in candidate.all_nodes() and block.exit in candidate.all_nodes():
                    if not candidate.contains(block.entry, include_boundary=False) and candidate.kind is not BlockKind.PROCESS:
                        # block.entry equals candidate boundary -> not strictly nested
                        if block.entry in (candidate.entry, candidate.exit):
                            continue
                    if parent is None or len(candidate.all_nodes()) < len(parent.all_nodes()):
                        parent = candidate
            if parent is not None:
                parent.children.append(block)

    def enclosing_blocks(self, node_id: str) -> List[Block]:
        """All blocks containing ``node_id``, smallest first."""
        containing = [b for b in self.blocks if b.contains(node_id)]
        return sorted(containing, key=lambda b: len(b.all_nodes()))

    def innermost_block(self, node_id: str) -> Block:
        """The smallest block containing ``node_id``."""
        enclosing = self.enclosing_blocks(node_id)
        if not enclosing:
            raise BlockStructureError(f"node {node_id!r} is not contained in any block")
        return enclosing[0]

    def minimal_block_containing(self, node_ids: Set[str]) -> Block:
        """The smallest block containing every node in ``node_ids``."""
        if not node_ids:
            return self.root
        candidates = [
            block
            for block in self.blocks
            if all(block.contains(node_id) for node_id in node_ids)
        ]
        if not candidates:
            raise BlockStructureError(f"no block contains all of {sorted(node_ids)!r}")
        return min(candidates, key=lambda b: len(b.all_nodes()))

    def loop_blocks(self) -> List[Block]:
        """All loop blocks of the schema."""
        return [b for b in self.blocks if b.kind is BlockKind.LOOP]

    def parallel_blocks(self) -> List[Block]:
        """All AND blocks of the schema."""
        return [b for b in self.blocks if b.kind is BlockKind.PARALLEL]

    def __len__(self) -> int:
        return len(self.blocks)
