"""Setuptools entry point.

Kept alongside ``pyproject.toml`` so the package can be installed in
environments whose setuptools/pip combination cannot build PEP 660
editable wheels (``pip install -e .`` falls back to ``setup.py develop``).
"""

from setuptools import setup

setup()
